//! Whole-system topology: sockets, QPI, NUMA nodes, and address mapping.
//!
//! Assembles dies into the paper's dual-socket system and answers the
//! mapping questions the protocol needs:
//!
//! * which NUMA node a core belongs to (socket, or half-socket in COD);
//! * which L3 slice (caching agent) serves a line for a given node — the
//!   address hash selects among the *requesting* node's slices;
//! * which home agent owns a line — interleaved over the socket's two HAs
//!   without COD, pinned to the cluster's single HA with COD;
//! * structural distances between any two endpoints, including QPI
//!   crossings between sockets.
//!
//! NUMA placement follows a base-address scheme: the line's home node is
//! encoded in high physical-address bits, so benchmark allocators can
//! request memory "on node N" exactly like `libnuma` does in the paper.

use crate::die::{Die, DieVariant, Distance, Stop};
use crate::hash;
use hswx_mem::{Addr, CoreId, HaId, LineAddr, NodeId, SliceId, SocketId};
use serde::{Deserialize, Serialize};

/// Bit position (in *line* address space) where the home node is encoded.
/// Byte address bit 38: each node owns a 256 GiB region, far larger than
/// any experiment footprint.
const NODE_SHIFT: u32 = 38 - 6;

/// An addressable endpoint for distance queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// A core (global index).
    Core(CoreId),
    /// An L3 slice / caching agent (global index).
    Slice(SliceId),
    /// A home agent (global index).
    Ha(HaId),
    /// A socket's QPI interface.
    Qpi(SocketId),
}

/// The assembled multi-socket system topology.
///
/// Every mapping query sits on the simulated-access hot path (slice
/// selection, HA interleave, CV-bit indices, send distances), so the
/// constructor derives lookup tables once and the public methods answer
/// from them without recomputation or allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemTopology {
    dies: Vec<Die>,
    cod: bool,
    cores_per_die: u16,
    /// Cores of each node, ascending.
    cores_by_node: Vec<Vec<CoreId>>,
    /// L3 slices of each node (slice i co-located with core i).
    slices_by_node: Vec<Vec<SliceId>>,
    /// Home agents of each node.
    has_by_node: Vec<Vec<HaId>>,
    /// Node of each global core.
    node_of_core_tab: Vec<NodeId>,
    /// Node-local index of each global core (CV bit position).
    node_local_tab: Vec<u8>,
    /// Same-die distances between stop indices (see [`Self::stop_index`]);
    /// all dies are identical, so one `n_stops`×`n_stops` table serves
    /// every socket.
    stop_dist: Vec<Distance>,
    /// Stops per die in the distance table.
    n_stops: usize,
}

impl SystemTopology {
    /// `n_sockets` identical dies, optionally split by Cluster-on-Die.
    pub fn new(n_sockets: u8, variant: DieVariant, cod: bool) -> Self {
        assert!(n_sockets >= 1);
        let mut topo = SystemTopology {
            dies: (0..n_sockets).map(|_| Die::new(variant)).collect(),
            cod,
            cores_per_die: variant.cores(),
            cores_by_node: Vec::new(),
            slices_by_node: Vec::new(),
            has_by_node: Vec::new(),
            node_of_core_tab: Vec::new(),
            node_local_tab: Vec::new(),
            stop_dist: Vec::new(),
            n_stops: 0,
        };
        topo.build_caches();
        topo
    }

    /// Derive the lookup tables from the structural definitions above.
    fn build_caches(&mut self) {
        let n_cores = self.n_cores() as usize;
        self.node_of_core_tab = (0..n_cores)
            .map(|c| self.node_of_core_uncached(CoreId(c as u16)))
            .collect();
        self.cores_by_node = (0..self.n_nodes())
            .map(|n| {
                (0..n_cores as u16)
                    .map(CoreId)
                    .filter(|&c| self.node_of_core_tab[c.0 as usize] == NodeId(n))
                    .collect()
            })
            .collect();
        self.slices_by_node = self
            .cores_by_node
            .iter()
            .map(|cores| cores.iter().map(|&c| SliceId(c.0)).collect())
            .collect();
        self.has_by_node = (0..self.n_nodes())
            .map(|n| self.has_of_node_uncached(NodeId(n)))
            .collect();
        self.node_local_tab = (0..n_cores)
            .map(|c| {
                let core = CoreId(c as u16);
                let node = self.node_of_core_tab[c];
                self.cores_by_node[node.0 as usize]
                    .iter()
                    .position(|&cc| cc == core)
                    .expect("core in its node") as u8
            })
            .collect();
        // Same-die distance table over every stop endpoint_location can
        // produce: die-local core/slices, both IMCs, and the QPI stop.
        self.n_stops = self.cores_per_die as usize + 3;
        self.stop_dist = (0..self.n_stops * self.n_stops)
            .map(|i| {
                let a = Self::stop_of_index(i / self.n_stops, self.cores_per_die);
                let b = Self::stop_of_index(i % self.n_stops, self.cores_per_die);
                self.dies[0].distance(a, b)
            })
            .collect();
    }

    /// Distance-table index of a stop (cores, then IMC 0/1, then QPI).
    fn stop_index(&self, stop: Stop) -> usize {
        match stop {
            Stop::CoreSlice(c) => c as usize,
            Stop::Imc(i) => self.cores_per_die as usize + i as usize,
            Stop::Qpi => self.cores_per_die as usize + 2,
            other => panic!("no distance-table entry for {other:?}"),
        }
    }

    fn stop_of_index(i: usize, cores_per_die: u16) -> Stop {
        let cores = cores_per_die as usize;
        match i {
            _ if i < cores => Stop::CoreSlice(i as u16),
            _ if i < cores + 2 => Stop::Imc((i - cores) as u8),
            _ => Stop::Qpi,
        }
    }

    /// The paper's test system: two 12-core dies.
    pub fn dual_socket_12core(cod: bool) -> Self {
        Self::new(2, DieVariant::TwelveCore, cod)
    }

    /// Whether Cluster-on-Die is active.
    pub fn cod(&self) -> bool {
        self.cod
    }

    /// Number of sockets.
    pub fn n_sockets(&self) -> u8 {
        self.dies.len() as u8
    }

    /// Total cores in the system.
    pub fn n_cores(&self) -> u16 {
        self.cores_per_die * self.dies.len() as u16
    }

    /// Cores per socket.
    pub fn cores_per_socket(&self) -> u16 {
        self.cores_per_die
    }

    /// Number of NUMA nodes (sockets, or 2× with COD).
    pub fn n_nodes(&self) -> u8 {
        self.n_sockets() * if self.cod { 2 } else { 1 }
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n_nodes()).map(NodeId)
    }

    /// Socket containing `core`.
    pub fn socket_of_core(&self, core: CoreId) -> SocketId {
        SocketId((core.0 / self.cores_per_die) as u8)
    }

    /// Die-local index of `core`.
    pub fn local_core(&self, core: CoreId) -> u16 {
        core.0 % self.cores_per_die
    }

    /// NUMA node of `core`.
    pub fn node_of_core(&self, core: CoreId) -> NodeId {
        self.node_of_core_tab[core.0 as usize]
    }

    fn node_of_core_uncached(&self, core: CoreId) -> NodeId {
        let socket = self.socket_of_core(core);
        if self.cod {
            let cluster = self.dies[socket.0 as usize].cluster_of_core(self.local_core(core));
            NodeId(socket.0 * 2 + cluster)
        } else {
            NodeId(socket.0)
        }
    }

    /// Socket containing `node`.
    pub fn socket_of_node(&self, node: NodeId) -> SocketId {
        if self.cod {
            SocketId(node.0 / 2)
        } else {
            SocketId(node.0)
        }
    }

    /// Node-local index of `core` within its node (for CV bits).
    pub fn node_local_core(&self, core: CoreId) -> u8 {
        self.node_local_tab[core.0 as usize]
    }

    /// All cores of `node`, ascending (borrowed — no per-call allocation).
    pub fn cores_of_node(&self, node: NodeId) -> &[CoreId] {
        &self.cores_by_node[node.0 as usize]
    }

    /// All L3 slices of `node` (slice i is co-located with core i).
    pub fn slices_of_node(&self, node: NodeId) -> &[SliceId] {
        &self.slices_by_node[node.0 as usize]
    }

    /// Home agents of `node`: both of the socket's HAs without COD, the
    /// cluster's single HA with COD.
    pub fn has_of_node(&self, node: NodeId) -> Vec<HaId> {
        self.has_by_node[node.0 as usize].clone()
    }

    fn has_of_node_uncached(&self, node: NodeId) -> Vec<HaId> {
        let socket = self.socket_of_node(node);
        if self.cod {
            let cluster = node.0 % 2;
            let imc = self.dies[socket.0 as usize].imc_of_cluster(cluster);
            vec![HaId(socket.0 * 2 + imc)]
        } else {
            vec![HaId(socket.0 * 2), HaId(socket.0 * 2 + 1)]
        }
    }

    /// Node owning home agent `ha`.
    pub fn node_of_ha(&self, ha: HaId) -> NodeId {
        let socket = ha.0 / 2;
        if self.cod {
            NodeId(socket * 2 + ha.0 % 2)
        } else {
            NodeId(socket)
        }
    }

    /// Node owning slice `slice`.
    pub fn node_of_slice(&self, slice: SliceId) -> NodeId {
        self.node_of_core(CoreId(slice.0))
    }

    // ---- address mapping ----

    /// First byte of `node`'s local memory region.
    pub fn numa_base(&self, node: NodeId) -> Addr {
        Addr((node.0 as u64) << 38)
    }

    /// Home node of a line (decoded from the address).
    pub fn home_node_of_line(&self, line: LineAddr) -> NodeId {
        let n = ((line.0 >> NODE_SHIFT) % self.n_nodes() as u64) as u8;
        NodeId(n)
    }

    /// The home agent owning `line`.
    pub fn ha_for_line(&self, line: LineAddr) -> HaId {
        let home = self.home_node_of_line(line);
        let has = &self.has_by_node[home.0 as usize];
        has[hash::pick(line.0, has.len())]
    }

    /// The caching agent (slice) responsible for `line` from the point of
    /// view of a requester in `node`.
    pub fn slice_for_line(&self, line: LineAddr, node: NodeId) -> SliceId {
        let slices = self.slices_of_node(node);
        slices[hash::pick(line.0, slices.len())]
    }

    // ---- distances ----

    fn endpoint_location(&self, e: Endpoint) -> (SocketId, Stop) {
        match e {
            Endpoint::Core(c) => (
                self.socket_of_core(c),
                Stop::CoreSlice(self.local_core(c)),
            ),
            Endpoint::Slice(s) => (
                self.socket_of_core(CoreId(s.0)),
                Stop::CoreSlice(s.0 % self.cores_per_die),
            ),
            Endpoint::Ha(h) => (SocketId(h.0 / 2), Stop::Imc(h.0 % 2)),
            Endpoint::Qpi(s) => (s, Stop::Qpi),
        }
    }

    /// Structural distance between two endpoints, crossing QPI if they sit
    /// on different sockets. All dies are identical, so both the same-die
    /// and the per-die legs of a QPI crossing come from one precomputed
    /// stop-distance table.
    pub fn distance(&self, a: Endpoint, b: Endpoint) -> Distance {
        let (sa, stop_a) = self.endpoint_location(a);
        let (sb, stop_b) = self.endpoint_location(b);
        let ia = self.stop_index(stop_a);
        let ib = self.stop_index(stop_b);
        if sa == sb {
            return self.stop_dist[ia * self.n_stops + ib];
        }
        let qpi = self.cores_per_die as usize + 2;
        let to_qpi = self.stop_dist[ia * self.n_stops + qpi];
        let from_qpi = self.stop_dist[qpi * self.n_stops + ib];
        to_qpi.plus(from_qpi).plus(Distance { ring_hops: 0, queues: 0, qpi: 1 })
    }

    /// The paper's "hop count" between two nodes: 0 = same node,
    /// then 1 + queue-crossings + QPI-crossings between representative
    /// agents (matches Fig. 6's 1-hop-on-chip / 1/2/3-hop QPI taxonomy).
    pub fn node_hops(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        let ha_a = self.has_of_node(a)[0];
        let ha_b = self.has_of_node(b)[0];
        let d = self.distance(Endpoint::Ha(ha_a), Endpoint::Ha(ha_b));
        d.queues + d.qpi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(cod: bool) -> SystemTopology {
        SystemTopology::dual_socket_12core(cod)
    }

    #[test]
    fn non_cod_has_two_nodes() {
        let t = topo(false);
        assert_eq!(t.n_nodes(), 2);
        assert_eq!(t.n_cores(), 24);
        assert_eq!(t.node_of_core(CoreId(0)), NodeId(0));
        assert_eq!(t.node_of_core(CoreId(11)), NodeId(0));
        assert_eq!(t.node_of_core(CoreId(12)), NodeId(1));
        assert_eq!(t.cores_of_node(NodeId(0)).len(), 12);
        assert_eq!(t.slices_of_node(NodeId(1)).len(), 12);
        assert_eq!(t.has_of_node(NodeId(0)), vec![HaId(0), HaId(1)]);
    }

    #[test]
    fn cod_has_four_nodes_matching_paper_numbering() {
        let t = topo(true);
        assert_eq!(t.n_nodes(), 4);
        // Socket 0: node0 = cores 0-5, node1 = cores 6-11.
        assert_eq!(t.node_of_core(CoreId(5)), NodeId(0));
        assert_eq!(t.node_of_core(CoreId(6)), NodeId(1));
        // Socket 1: node2 = cores 12-17, node3 = cores 18-23.
        assert_eq!(t.node_of_core(CoreId(12)), NodeId(2));
        assert_eq!(t.node_of_core(CoreId(23)), NodeId(3));
        assert_eq!(t.cores_of_node(NodeId(1)).len(), 6);
        assert_eq!(t.has_of_node(NodeId(0)), vec![HaId(0)]);
        assert_eq!(t.has_of_node(NodeId(1)), vec![HaId(1)]);
        assert_eq!(t.has_of_node(NodeId(3)), vec![HaId(3)]);
    }

    #[test]
    fn node_local_core_indices_are_dense() {
        let t = topo(true);
        let cores = t.cores_of_node(NodeId(1));
        for (i, &c) in cores.iter().enumerate() {
            assert_eq!(t.node_local_core(c) as usize, i);
        }
    }

    #[test]
    fn numa_base_roundtrips_to_home_node() {
        for cod in [false, true] {
            let t = topo(cod);
            for node in t.nodes() {
                let base = t.numa_base(node);
                assert_eq!(t.home_node_of_line(base.line()), node, "cod={cod}");
                // Anywhere within the first GiB of the region too.
                let inner = Addr(base.0 + (1 << 30) - 64);
                assert_eq!(t.home_node_of_line(inner.line()), node);
            }
        }
    }

    #[test]
    fn ha_for_line_interleaves_without_cod() {
        let t = topo(false);
        let base = t.numa_base(NodeId(0)).line();
        let mut counts = [0u32; 2];
        for l in base.span(10_000) {
            counts[t.ha_for_line(l).0 as usize] += 1;
        }
        assert!(counts[0] > 4_000 && counts[1] > 4_000, "{counts:?}");
    }

    #[test]
    fn ha_for_line_is_pinned_with_cod() {
        let t = topo(true);
        let base = t.numa_base(NodeId(1)).line();
        for l in base.span(1_000) {
            assert_eq!(t.ha_for_line(l), HaId(1));
        }
    }

    #[test]
    fn slice_hash_spreads_within_requesting_node() {
        let t = topo(true);
        let base = t.numa_base(NodeId(0)).line();
        let slices = t.slices_of_node(NodeId(0));
        let mut counts = vec![0u32; 24];
        for l in base.span(12_000) {
            let s = t.slice_for_line(l, NodeId(0));
            assert!(slices.contains(&s));
            counts[s.0 as usize] += 1;
        }
        for s in slices {
            assert!(counts[s.0 as usize] > 1_500, "{counts:?}");
        }
    }

    #[test]
    fn qpi_crossing_counted_once() {
        let t = topo(false);
        let d = t.distance(Endpoint::Core(CoreId(0)), Endpoint::Core(CoreId(12)));
        assert_eq!(d.qpi, 1);
        let d = t.distance(Endpoint::Core(CoreId(0)), Endpoint::Core(CoreId(5)));
        assert_eq!(d.qpi, 0);
    }

    #[test]
    fn node_hops_match_paper_cod_taxonomy() {
        let t = topo(true);
        // Paper §VI-C: node0-node2 one hop (QPI), node0-node3 and
        // node1-node2 two hops, node1-node3 three hops.
        assert_eq!(t.node_hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.node_hops(NodeId(0), NodeId(1)), 1); // on-chip queue
        assert_eq!(t.node_hops(NodeId(0), NodeId(2)), 1); // QPI only
        assert_eq!(t.node_hops(NodeId(0), NodeId(3)), 2);
        assert_eq!(t.node_hops(NodeId(1), NodeId(2)), 2);
        assert_eq!(t.node_hops(NodeId(1), NodeId(3)), 3);
    }

    #[test]
    fn distance_symmetry_across_sockets() {
        let t = topo(true);
        let pairs = [
            (Endpoint::Core(CoreId(3)), Endpoint::Ha(HaId(3))),
            (Endpoint::Slice(SliceId(8)), Endpoint::Ha(HaId(0))),
            (Endpoint::Core(CoreId(20)), Endpoint::Slice(SliceId(2))),
        ];
        for (a, b) in pairs {
            assert_eq!(t.distance(a, b), t.distance(b, a));
        }
    }

    #[test]
    fn eight_core_system_works_too() {
        let t = SystemTopology::new(2, DieVariant::EightCore, true);
        assert_eq!(t.n_nodes(), 4);
        assert_eq!(t.cores_of_node(NodeId(0)).len(), 4);
        // Single ring: no queue crossings on chip.
        assert_eq!(t.node_hops(NodeId(0), NodeId(1)), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn any_topo() -> impl Strategy<Value = SystemTopology> {
        (any::<bool>(), 0usize..3).prop_map(|(cod, v)| {
            let variant = [
                crate::die::DieVariant::EightCore,
                crate::die::DieVariant::TwelveCore,
                crate::die::DieVariant::EighteenCore,
            ][v];
            SystemTopology::new(2, variant, cod)
        })
    }

    proptest! {
        /// Nodes partition the cores exactly.
        #[test]
        fn nodes_partition_cores(t in any_topo()) {
            let mut seen = vec![0u32; t.n_cores() as usize];
            for node in t.nodes() {
                for &c in t.cores_of_node(node) {
                    prop_assert_eq!(t.node_of_core(c), node);
                    seen[c.0 as usize] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&x| x == 1));
        }

        /// Every line's responsible slice lies in the requesting node, and
        /// its home agent lies in its home node.
        #[test]
        fn line_mapping_is_node_consistent(t in any_topo(), line in 0u64..100_000) {
            for node in t.nodes() {
                let base = t.numa_base(node).line();
                let l = LineAddr(base.0 + line);
                prop_assert_eq!(t.home_node_of_line(l), node);
                let ha = t.ha_for_line(l);
                prop_assert_eq!(t.node_of_ha(ha), node);
                for req in t.nodes() {
                    let s = t.slice_for_line(l, req);
                    prop_assert_eq!(t.node_of_slice(s), req);
                }
            }
        }

        /// Distances are symmetric and satisfy the QPI-crossing rule.
        #[test]
        fn distances_symmetric(t in any_topo(), a in 0u16..16, b in 0u16..16) {
            let n = t.n_cores();
            let ea = Endpoint::Core(CoreId(a % n));
            let eb = Endpoint::Core(CoreId(b % n));
            prop_assert_eq!(t.distance(ea, eb), t.distance(eb, ea));
            let cross = t.socket_of_core(CoreId(a % n)) != t.socket_of_core(CoreId(b % n));
            prop_assert_eq!(t.distance(ea, eb).qpi, cross as u32);
        }

        /// node_local_core is a bijection onto 0..cores_per_node.
        #[test]
        fn node_local_indices_dense(t in any_topo()) {
            for node in t.nodes() {
                let cores = t.cores_of_node(node);
                let mut idx: Vec<u8> = cores.iter().map(|&c| t.node_local_core(c)).collect();
                idx.sort_unstable();
                let want: Vec<u8> = (0..cores.len() as u8).collect();
                prop_assert_eq!(idx, want);
            }
        }
    }
}
