//! Die layouts and on-die ring routing.
//!
//! Haswell-EP ships three physical dies ([16, §1.1] in the paper):
//!
//! * **8-core die** — a single bidirectional ring connecting all cores/L3
//!   slices, both memory controllers, QPI, and PCIe.
//! * **12-core die** — two rings: ring 0 carries eight core/slice stops,
//!   one IMC, QPI, and PCIe; ring 1 carries the remaining four core/slice
//!   stops and the second IMC. Two bidirectional buffered queues join the
//!   rings.
//! * **18-core die** — same partitioned design with eight + ten cores.
//!
//! Each core shares a ring stop with its co-located L3 slice (CBo). The
//! exact stop ordering is not published; the orderings here follow the
//! paper's Figure 1 block diagram and public die shots, and the asymmetry
//! that matters for the paper's COD observations (cores 6–7 of node 1
//! living on ring 0) is preserved exactly.

use serde::{Deserialize, Serialize};

/// The three Haswell-EP physical die variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DieVariant {
    /// Single-ring 8-core die (4/6/8-core SKUs).
    EightCore,
    /// Dual-ring 12-core die (10/12-core SKUs) — the paper's test system.
    TwelveCore,
    /// Dual-ring 18-core die (14/16/18-core SKUs).
    EighteenCore,
}

impl DieVariant {
    /// Number of cores (= L3 slices) on the die.
    pub fn cores(self) -> u16 {
        match self {
            DieVariant::EightCore => 8,
            DieVariant::TwelveCore => 12,
            DieVariant::EighteenCore => 18,
        }
    }

    /// Number of memory controllers (home agents).
    pub fn imcs(self) -> u8 {
        2
    }
}

/// A ring stop on a die. Core and slice indices are die-local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stop {
    /// A core together with its co-located L3 slice / caching agent.
    CoreSlice(u16),
    /// A memory controller / home agent.
    Imc(u8),
    /// The QPI link interface.
    Qpi,
    /// The PCIe root complex.
    Pcie,
    /// One side of a ring-to-ring buffered queue (queue index).
    Queue(u8),
}

/// Structural distance between two endpoints.
///
/// `hswx-haswell` converts this to nanoseconds via calibrated per-hop,
/// per-queue, and per-QPI-crossing costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Distance {
    /// On-die ring hops traversed (summed over both dies for QPI paths).
    pub ring_hops: u32,
    /// Ring-to-ring buffered-queue crossings.
    pub queues: u32,
    /// QPI link crossings (0 or 1 in a two-socket system).
    pub qpi: u32,
}

impl Distance {
    /// Component-wise sum.
    pub fn plus(self, other: Distance) -> Distance {
        Distance {
            ring_hops: self.ring_hops + other.ring_hops,
            queues: self.queues + other.queues,
            qpi: self.qpi + other.qpi,
        }
    }
}

/// One physical die: rings of stops.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Die {
    variant: DieVariant,
    /// `rings[r]` is the ordered cycle of stops on ring `r`.
    rings: Vec<Vec<Stop>>,
}

impl Die {
    /// Build the canonical layout for `variant`.
    pub fn new(variant: DieVariant) -> Self {
        let rings = match variant {
            DieVariant::EightCore => vec![vec![
                Stop::Qpi,
                Stop::Pcie,
                Stop::CoreSlice(0),
                Stop::CoreSlice(1),
                Stop::CoreSlice(2),
                Stop::CoreSlice(3),
                Stop::Imc(0),
                Stop::CoreSlice(4),
                Stop::CoreSlice(5),
                Stop::CoreSlice(6),
                Stop::CoreSlice(7),
                Stop::Imc(1),
            ]],
            DieVariant::TwelveCore => vec![
                vec![
                    Stop::Qpi,
                    Stop::Pcie,
                    Stop::CoreSlice(0),
                    Stop::CoreSlice(1),
                    Stop::CoreSlice(2),
                    Stop::CoreSlice(3),
                    Stop::Queue(0),
                    Stop::Imc(0),
                    Stop::CoreSlice(4),
                    Stop::CoreSlice(5),
                    Stop::CoreSlice(6),
                    Stop::CoreSlice(7),
                    Stop::Queue(1),
                ],
                vec![
                    Stop::Queue(0),
                    Stop::CoreSlice(8),
                    Stop::CoreSlice(9),
                    Stop::Imc(1),
                    Stop::CoreSlice(10),
                    Stop::CoreSlice(11),
                    Stop::Queue(1),
                ],
            ],
            DieVariant::EighteenCore => vec![
                vec![
                    Stop::Qpi,
                    Stop::Pcie,
                    Stop::CoreSlice(0),
                    Stop::CoreSlice(1),
                    Stop::CoreSlice(2),
                    Stop::CoreSlice(3),
                    Stop::Queue(0),
                    Stop::Imc(0),
                    Stop::CoreSlice(4),
                    Stop::CoreSlice(5),
                    Stop::CoreSlice(6),
                    Stop::CoreSlice(7),
                    Stop::Queue(1),
                ],
                vec![
                    Stop::Queue(0),
                    Stop::CoreSlice(8),
                    Stop::CoreSlice(9),
                    Stop::CoreSlice(10),
                    Stop::CoreSlice(11),
                    Stop::CoreSlice(12),
                    Stop::Imc(1),
                    Stop::CoreSlice(13),
                    Stop::CoreSlice(14),
                    Stop::CoreSlice(15),
                    Stop::CoreSlice(16),
                    Stop::CoreSlice(17),
                    Stop::Queue(1),
                ],
            ],
        };
        Die { variant, rings }
    }

    /// This die's variant.
    pub fn variant(&self) -> DieVariant {
        self.variant
    }

    /// Number of rings (1 or 2).
    pub fn n_rings(&self) -> usize {
        self.rings.len()
    }

    /// (ring, position) of `stop`. Queues exist on both rings; this returns
    /// the first occurrence — use `locate_on_ring` for a specific ring.
    fn locate(&self, stop: Stop) -> (usize, usize) {
        for (r, ring) in self.rings.iter().enumerate() {
            if let Some(i) = ring.iter().position(|&s| s == stop) {
                return (r, i);
            }
        }
        panic!("stop {stop:?} not on die {:?}", self.variant);
    }

    fn locate_on_ring(&self, ring: usize, stop: Stop) -> usize {
        self.rings[ring]
            .iter()
            .position(|&s| s == stop)
            .unwrap_or_else(|| panic!("stop {stop:?} not on ring {ring}"))
    }

    /// Ring index of a die-local core.
    pub fn ring_of_core(&self, core: u16) -> usize {
        self.locate(Stop::CoreSlice(core)).0
    }

    /// Ring index of an IMC.
    pub fn ring_of_imc(&self, imc: u8) -> usize {
        self.locate(Stop::Imc(imc)).0
    }

    /// COD cluster (0 or 1) of a die-local core: equal halves by index,
    /// matching the paper's cores 0–5 / 6–11 split on the 12-core die.
    pub fn cluster_of_core(&self, core: u16) -> u8 {
        (core >= self.variant.cores() / 2) as u8
    }

    /// The IMC serving a COD cluster (cluster 0 → IMC 0, cluster 1 → IMC 1).
    pub fn imc_of_cluster(&self, cluster: u8) -> u8 {
        cluster
    }

    /// Minimum bidirectional hop count between two positions on one ring.
    fn ring_hops(&self, ring: usize, a: usize, b: usize) -> u32 {
        let n = self.rings[ring].len();
        let fwd = (b + n - a) % n;
        (fwd.min(n - fwd)) as u32
    }

    /// Structural distance between two stops on this die.
    ///
    /// Same ring: shortest bidirectional arc. Different rings: the best
    /// path through either buffered queue (hops to the queue stop on the
    /// source ring + one queue crossing + hops from the queue stop on the
    /// destination ring).
    pub fn distance(&self, a: Stop, b: Stop) -> Distance {
        if a == b {
            return Distance::default();
        }
        let (ra, ia) = self.locate(a);
        let (rb, ib) = self.locate(b);
        if ra == rb {
            return Distance { ring_hops: self.ring_hops(ra, ia, ib), queues: 0, qpi: 0 };
        }
        // Cross-ring: try both queues.
        let mut best: Option<Distance> = None;
        for q in 0..2u8 {
            let qa = self.locate_on_ring(ra, Stop::Queue(q));
            let qb = self.locate_on_ring(rb, Stop::Queue(q));
            let d = Distance {
                ring_hops: self.ring_hops(ra, ia, qa) + self.ring_hops(rb, qb, ib),
                queues: 1,
                qpi: 0,
            };
            best = Some(match best {
                Some(prev) if prev.ring_hops <= d.ring_hops => prev,
                _ => d,
            });
        }
        best.expect("dual-ring dies have two queues")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_core_ring_membership_matches_paper() {
        let d = Die::new(DieVariant::TwelveCore);
        // Cores 0..7 on ring 0, 8..11 on ring 1 (paper Fig. 1a).
        for c in 0..8 {
            assert_eq!(d.ring_of_core(c), 0, "core {c}");
        }
        for c in 8..12 {
            assert_eq!(d.ring_of_core(c), 1, "core {c}");
        }
        assert_eq!(d.ring_of_imc(0), 0);
        assert_eq!(d.ring_of_imc(1), 1);
    }

    #[test]
    fn cod_clusters_split_in_half() {
        let d = Die::new(DieVariant::TwelveCore);
        for c in 0..6 {
            assert_eq!(d.cluster_of_core(c), 0);
        }
        for c in 6..12 {
            assert_eq!(d.cluster_of_core(c), 1);
        }
        // The asymmetry the paper analyzes: node 1 cores 6 and 7 sit on
        // ring 0, its other four cores on ring 1.
        assert_eq!(d.ring_of_core(6), 0);
        assert_eq!(d.ring_of_core(7), 0);
        assert_eq!(d.ring_of_core(8), 1);
    }

    #[test]
    fn same_ring_distance_is_shortest_arc() {
        let d = Die::new(DieVariant::TwelveCore);
        // Ring 0 has 13 stops; Qpi at 0, Queue(1) at 12 -> 1 hop backwards.
        let dist = d.distance(Stop::Qpi, Stop::Queue(1));
        assert_eq!(dist, Distance { ring_hops: 1, queues: 0, qpi: 0 });
        let dist = d.distance(Stop::CoreSlice(0), Stop::CoreSlice(3));
        assert_eq!(dist.ring_hops, 3);
        assert_eq!(dist.queues, 0);
    }

    #[test]
    fn cross_ring_distance_uses_best_queue() {
        let d = Die::new(DieVariant::TwelveCore);
        let dist = d.distance(Stop::CoreSlice(0), Stop::CoreSlice(8));
        assert_eq!(dist.queues, 1);
        // core0 at ring0 idx2: to Queue(0) idx6 = 4 hops or Queue(1) idx12
        // = 3 hops (via 0). Queue(0) on ring1 idx0 -> core8 idx1 = 1 hop;
        // Queue(1) idx6 -> core8 idx1 = 2 hops (7-stop ring: min(5,2)=2).
        // Best: min(4+1, 3+2) = 5.
        assert_eq!(dist.ring_hops, 5);
    }

    #[test]
    fn distance_is_symmetric() {
        let d = Die::new(DieVariant::TwelveCore);
        let stops = [
            Stop::Qpi,
            Stop::CoreSlice(0),
            Stop::CoreSlice(7),
            Stop::CoreSlice(11),
            Stop::Imc(0),
            Stop::Imc(1),
        ];
        for &a in &stops {
            for &b in &stops {
                assert_eq!(d.distance(a, b), d.distance(b, a), "{a:?} {b:?}");
            }
        }
    }

    #[test]
    fn self_distance_is_zero() {
        let d = Die::new(DieVariant::EightCore);
        assert_eq!(d.distance(Stop::Imc(0), Stop::Imc(0)), Distance::default());
    }

    #[test]
    fn eight_core_die_is_single_ring() {
        let d = Die::new(DieVariant::EightCore);
        assert_eq!(d.n_rings(), 1);
        let dist = d.distance(Stop::CoreSlice(0), Stop::CoreSlice(7));
        assert_eq!(dist.queues, 0);
    }

    #[test]
    fn eighteen_core_die_shape() {
        let d = Die::new(DieVariant::EighteenCore);
        assert_eq!(d.n_rings(), 2);
        assert_eq!(d.ring_of_core(7), 0);
        assert_eq!(d.ring_of_core(8), 1);
        assert_eq!(d.ring_of_core(17), 1);
        assert_eq!(DieVariant::EighteenCore.cores(), 18);
    }

    #[test]
    fn ring_distances_are_bounded_by_half_the_ring() {
        for variant in [DieVariant::EightCore, DieVariant::TwelveCore, DieVariant::EighteenCore] {
            let d = Die::new(variant);
            let n = variant.cores();
            for a in 0..n {
                for b in 0..n {
                    let dist = d.distance(Stop::CoreSlice(a), Stop::CoreSlice(b));
                    // The longest ring has 13 stops; a bidirectional ring
                    // never needs more than floor(stops/2) hops per ring,
                    // plus the hops on the second ring for crossings.
                    assert!(dist.ring_hops <= 13, "{variant:?} {a}->{b}: {dist:?}");
                    assert!(dist.queues <= 1);
                    assert_eq!(dist.qpi, 0);
                }
            }
        }
    }

    #[test]
    fn node0_cores_have_similar_avg_slice_distance() {
        // Paper: "The average distance to the individual L3 slices is
        // almost identical for all cores" (first node, cores 0-5).
        let d = Die::new(DieVariant::TwelveCore);
        let avg = |c: u16| -> f64 {
            (0..6)
                .map(|s| d.distance(Stop::CoreSlice(c), Stop::CoreSlice(s)).ring_hops as f64)
                .sum::<f64>()
                / 6.0
        };
        let avgs: Vec<f64> = (0..6).map(avg).collect();
        let lo = avgs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = avgs.iter().cloned().fold(0.0, f64::max);
        assert!(hi - lo <= 1.5, "avgs {avgs:?}");
    }
}
