//! Reproducible fault-campaign plans.
//!
//! A [`FaultPlan`] pins everything a campaign needs to be replayed
//! bit-for-bit: the RNG seed, the number of trials per matrix cell, and
//! the fault classes to exercise. Plans round-trip through a small
//! line-oriented text format (`key = value`, `#` comments) so campaigns
//! can be stored next to CI configs and attached to bug reports.
//!
//! Parsing collects *every* problem in a plan file into one
//! [`PlanError`], each tagged with its line number — a hand-edited plan
//! with three typos reports all three at once instead of one per run.

use std::fmt;

/// One class of injected protocol-state corruption or transient fault.
///
/// Classes marked *conservative-overstatement* in the paper's terminology
/// (a directory claiming more sharers than exist) are legal states by
/// design and therefore not represented here: the campaign only injects
/// corruptions the protocol is supposed to make impossible, plus
/// transients the hardware is supposed to heal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Flip a Shared node-level copy to Forward, minting a second
    /// forwardable copy of the line.
    MintForwarder,
    /// Flip a Shared node-level copy to Modified while other copies exist.
    BreakMExclusivity,
    /// Silently drop a line from an inclusive L3 slice, orphaning the
    /// private core copies above it.
    DropL3Line,
    /// Clear the L3 core-valid bits for a line a core still caches.
    ClearCoreValid,
    /// Reset the in-memory directory to remote-invalid while a remote
    /// node holds the line (COD only).
    DirUnderstate,
    /// Remove the dirty owner from a live HitME presence vector (COD
    /// only).
    HitMeDropNode,
    /// Set the clean bit on a HitME entry whose line is held Modified
    /// (COD only).
    HitMeFalseClean,
    /// Make a calibration latency constant negative.
    CalibNegative,
    /// Make a calibration constant NaN.
    CalibNan,
    /// Swallow snoop messages, fabricating "no copy" responses so a
    /// requester completes against stale memory data.
    DropSnoop,
    /// Stall snoop messages long enough that the transaction walk blows
    /// its latency budget.
    DelaySnoop,
    /// A short burst of QPI flit CRC corruptions the link layer must
    /// replay transparently, changing latency only.
    QpiCrc,
    /// A CRC-error storm outlasting the link retry buffer; the affected
    /// walk must fail with a typed link-failure error, nothing else.
    QpiCrcStorm,
    /// A transient in-memory-directory read glitch healed by an ECC
    /// re-read (COD only).
    DirGlitch,
    /// A transient HitME SRAM read glitch healed by re-lookup (COD only).
    HitMeGlitch,
    /// A poisoned line whose consumption must abort exactly one walk with
    /// a typed error while every other structure stays untouched.
    PoisonLine,
    /// A shard of the sharded batch runtime panics mid-plan; the
    /// supervisor must heal it via restart-from-snapshot + message-log
    /// replay, bit-identically to a clean run.
    ShardPanic,
    /// A shard stalls past its watchdog deadline; the supervisor must
    /// kill and restart it, bit-identically to a clean run.
    ShardWatchdog,
    /// A shard deterministically exhausts its restart budget; the batch
    /// must abort with one typed error before any dispatch, leaving the
    /// simulated state untouched.
    ShardQueueOverflow,
}

/// What the simulator is expected to do with a fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The invariant monitor must convert the corruption into a typed
    /// error — silent completion is a detection gap.
    Detect,
    /// The hardware model must heal the transient transparently: same
    /// data sources, protocol state, and statistics as a clean run,
    /// latency aside.
    Recover,
    /// The fault is unrecoverable by design; it must be contained to one
    /// typed error without corrupting the rest of the simulation.
    Contain,
}

impl FaultKind {
    /// Stable identifier used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Detect => "detect",
            FaultKind::Recover => "recover",
            FaultKind::Contain => "contain",
        }
    }
}

impl FaultClass {
    /// Every class, in reporting order: detection classes first, then the
    /// recoverable/contained transients.
    pub const ALL: [FaultClass; 19] = [
        FaultClass::MintForwarder,
        FaultClass::BreakMExclusivity,
        FaultClass::DropL3Line,
        FaultClass::ClearCoreValid,
        FaultClass::DirUnderstate,
        FaultClass::HitMeDropNode,
        FaultClass::HitMeFalseClean,
        FaultClass::CalibNegative,
        FaultClass::CalibNan,
        FaultClass::DropSnoop,
        FaultClass::DelaySnoop,
        FaultClass::QpiCrc,
        FaultClass::QpiCrcStorm,
        FaultClass::DirGlitch,
        FaultClass::HitMeGlitch,
        FaultClass::PoisonLine,
        FaultClass::ShardPanic,
        FaultClass::ShardWatchdog,
        FaultClass::ShardQueueOverflow,
    ];

    /// Stable identifier used in plans and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::MintForwarder => "mint-forwarder",
            FaultClass::BreakMExclusivity => "break-m-exclusivity",
            FaultClass::DropL3Line => "drop-l3-line",
            FaultClass::ClearCoreValid => "clear-core-valid",
            FaultClass::DirUnderstate => "dir-understate",
            FaultClass::HitMeDropNode => "hitme-drop-node",
            FaultClass::HitMeFalseClean => "hitme-false-clean",
            FaultClass::CalibNegative => "calib-negative",
            FaultClass::CalibNan => "calib-nan",
            FaultClass::DropSnoop => "drop-snoop",
            FaultClass::DelaySnoop => "delay-snoop",
            FaultClass::QpiCrc => "qpi-crc",
            FaultClass::QpiCrcStorm => "qpi-crc-storm",
            FaultClass::DirGlitch => "dir-glitch",
            FaultClass::HitMeGlitch => "hitme-glitch",
            FaultClass::PoisonLine => "poison-line",
            FaultClass::ShardPanic => "shard-panic",
            FaultClass::ShardWatchdog => "shard-watchdog",
            FaultClass::ShardQueueOverflow => "shard-queue-overflow",
        }
    }

    /// Parse a [`name`](Self::name) back into the class.
    pub fn from_name(s: &str) -> Option<FaultClass> {
        FaultClass::ALL.iter().copied().find(|c| c.name() == s)
    }

    /// The expected simulator response to this class.
    pub fn kind(self) -> FaultKind {
        match self {
            FaultClass::QpiCrc
            | FaultClass::DirGlitch
            | FaultClass::HitMeGlitch
            | FaultClass::ShardPanic
            | FaultClass::ShardWatchdog => FaultKind::Recover,
            FaultClass::QpiCrcStorm
            | FaultClass::PoisonLine
            | FaultClass::ShardQueueOverflow => FaultKind::Contain,
            _ => FaultKind::Detect,
        }
    }

    /// Whether the class touches in-memory-directory state and therefore
    /// only applies to directory-enabled (COD) modes.
    pub fn requires_directory(self) -> bool {
        matches!(self, FaultClass::DirUnderstate | FaultClass::DirGlitch)
    }

    /// Whether the class touches HitME state (COD with HitME enabled).
    pub fn requires_hitme(self) -> bool {
        matches!(
            self,
            FaultClass::HitMeDropNode | FaultClass::HitMeFalseClean | FaultClass::HitMeGlitch
        )
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Every problem found in a plan file, each tagged with its 1-based line
/// number. Parsing keeps going after the first bad line so a hand-edited
/// plan reports all of its typos in one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// `(line, message)` pairs in file order.
    pub errors: Vec<(usize, String)>,
}

impl PlanError {
    fn push(&mut self, line: usize, message: impl Into<String>) {
        self.errors.push((line, message.into()));
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (line, msg)) in self.errors.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "line {line}: {msg}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PlanError {}

impl From<PlanError> for String {
    fn from(e: PlanError) -> String {
        e.to_string()
    }
}

/// A reproducible fault-injection campaign description.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed deriving every per-trial choice (target line, actors).
    pub seed: u64,
    /// Trials per (mode, class) matrix cell.
    pub trials: u32,
    /// Fault classes to exercise.
    pub classes: Vec<FaultClass>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xC0FFEE,
            trials: 4,
            classes: FaultClass::ALL.to_vec(),
        }
    }
}

impl FaultPlan {
    /// A minimal single-trial plan for CI smoke runs.
    pub fn quick() -> Self {
        FaultPlan { trials: 1, ..FaultPlan::default() }
    }

    /// Serialize to the plan text format.
    pub fn to_text(&self) -> String {
        let classes: Vec<&str> = self.classes.iter().map(|c| c.name()).collect();
        format!(
            "# hswx fault-injection plan\nseed = {:#x}\ntrials = {}\nclasses = {}\n",
            self.seed,
            self.trials,
            classes.join(", ")
        )
    }

    /// Parse the plan text format. Unknown keys and class names are
    /// errors; omitted keys keep their [`Default`] values. All problems
    /// are collected into one [`PlanError`] rather than stopping at the
    /// first.
    pub fn from_text(text: &str) -> Result<FaultPlan, PlanError> {
        let mut plan = FaultPlan::default();
        let mut errors = PlanError { errors: Vec::new() };
        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                errors.push(lineno, format!("expected `key = value`, got {raw:?}"));
                continue;
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => match parse_u64(value) {
                    Some(v) => plan.seed = v,
                    None => errors.push(lineno, format!("bad seed {value:?}")),
                },
                "trials" => {
                    match parse_u64(value)
                        .and_then(|v| u32::try_from(v).ok())
                        .filter(|&v| v > 0)
                    {
                        Some(v) => plan.trials = v,
                        None => errors.push(lineno, format!("bad trials {value:?}")),
                    }
                }
                "classes" => {
                    let mut classes = Vec::new();
                    for name in value.split(',') {
                        let name = name.trim();
                        if name.is_empty() {
                            continue;
                        }
                        match FaultClass::from_name(name) {
                            Some(class) => {
                                if !classes.contains(&class) {
                                    classes.push(class);
                                }
                            }
                            None => {
                                errors.push(lineno, format!("unknown fault class {name:?}"));
                            }
                        }
                    }
                    if classes.is_empty() {
                        errors.push(lineno, "empty class list");
                    } else {
                        plan.classes = classes;
                    }
                }
                other => errors.push(lineno, format!("unknown key {other:?}")),
            }
        }
        if errors.errors.is_empty() {
            Ok(plan)
        } else {
            Err(errors)
        }
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let plan = FaultPlan { seed: 0xDEAD, trials: 7, classes: FaultClass::ALL.to_vec() };
        let parsed = FaultPlan::from_text(&plan.to_text()).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn parse_subset_and_comments() {
        let text = "# campaign\nseed = 42\nclasses = drop-snoop, calib-nan # msg faults\n";
        let plan = FaultPlan::from_text(text).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.trials, FaultPlan::default().trials);
        assert_eq!(plan.classes, vec![FaultClass::DropSnoop, FaultClass::CalibNan]);
    }

    #[test]
    fn rejects_unknown_class_and_key() {
        assert!(FaultPlan::from_text("classes = flip-bits\n").is_err());
        assert!(FaultPlan::from_text("sed = 1\n").is_err());
    }

    #[test]
    fn collects_every_error_with_line_numbers() {
        let text = "seed = zzz\ntrials = 0\nclasses = qpi-crc, flip-bits\nbogus-key = 1\nno-equals-here\n";
        let err = FaultPlan::from_text(text).unwrap_err();
        let lines: Vec<usize> = err.errors.iter().map(|&(l, _)| l).collect();
        assert_eq!(lines, vec![1, 2, 3, 4, 5], "all five problems reported: {err}");
        let rendered = err.to_string();
        assert!(rendered.contains("line 1: bad seed"), "{rendered}");
        assert!(rendered.contains("line 3: unknown fault class \"flip-bits\""), "{rendered}");
        assert!(rendered.contains("line 5: expected `key = value`"), "{rendered}");
    }

    #[test]
    fn every_class_name_round_trips() {
        for class in FaultClass::ALL {
            assert_eq!(FaultClass::from_name(class.name()), Some(class));
        }
    }

    #[test]
    fn kinds_partition_the_classes() {
        let recover: Vec<_> = FaultClass::ALL
            .iter()
            .filter(|c| c.kind() == FaultKind::Recover)
            .collect();
        assert_eq!(recover.len(), 5);
        let contain: Vec<_> = FaultClass::ALL
            .iter()
            .filter(|c| c.kind() == FaultKind::Contain)
            .collect();
        assert_eq!(contain.len(), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_classes() -> impl Strategy<Value = Vec<FaultClass>> {
        proptest::collection::vec(0usize..FaultClass::ALL.len(), 1..FaultClass::ALL.len())
            .prop_map(|idxs| {
                let mut v = Vec::new();
                for i in idxs {
                    let c = FaultClass::ALL[i];
                    if !v.contains(&c) {
                        v.push(c);
                    }
                }
                v
            })
    }

    /// Printable-ASCII-plus-newline soup, up to ~400 chars — enough to
    /// hit comments, blank lines, junk keys, and malformed values.
    fn arb_text() -> impl Strategy<Value = String> {
        proptest::collection::vec(
            prop_oneof![Just('\n'), (0x20u8..0x7f).prop_map(|b| b as char)],
            0..400usize,
        )
        .prop_map(|cs| cs.into_iter().collect())
    }

    proptest! {
        /// Any plan serializes to text that parses back to itself.
        #[test]
        fn any_plan_round_trips(seed in any::<u64>(), trials in 1u32..10_000, classes in arb_classes()) {
            let plan = FaultPlan { seed, trials, classes };
            let parsed = FaultPlan::from_text(&plan.to_text()).unwrap();
            prop_assert_eq!(parsed, plan);
        }

        /// Junk interleaved with valid lines never panics, and every
        /// reported error carries a plausible line number.
        #[test]
        fn arbitrary_text_never_panics(text in arb_text()) {
            match FaultPlan::from_text(&text) {
                Ok(plan) => prop_assert!(!plan.classes.is_empty()),
                Err(e) => {
                    let n_lines = text.lines().count();
                    prop_assert!(!e.errors.is_empty());
                    for &(line, _) in &e.errors {
                        prop_assert!(line >= 1 && line <= n_lines.max(1));
                    }
                }
            }
        }
    }
}
