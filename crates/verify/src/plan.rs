//! Reproducible fault-campaign plans.
//!
//! A [`FaultPlan`] pins everything a campaign needs to be replayed
//! bit-for-bit: the RNG seed, the number of trials per matrix cell, and
//! the fault classes to exercise. Plans round-trip through a small
//! line-oriented text format (`key = value`, `#` comments) so campaigns
//! can be stored next to CI configs and attached to bug reports.

use std::fmt;

/// One class of injected protocol-state corruption.
///
/// Classes marked *conservative-overstatement* in the paper's terminology
/// (a directory claiming more sharers than exist) are legal states by
/// design and therefore not represented here: the campaign only injects
/// corruptions the protocol is supposed to make impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Flip a Shared node-level copy to Forward, minting a second
    /// forwardable copy of the line.
    MintForwarder,
    /// Flip a Shared node-level copy to Modified while other copies exist.
    BreakMExclusivity,
    /// Silently drop a line from an inclusive L3 slice, orphaning the
    /// private core copies above it.
    DropL3Line,
    /// Clear the L3 core-valid bits for a line a core still caches.
    ClearCoreValid,
    /// Reset the in-memory directory to remote-invalid while a remote
    /// node holds the line (COD only).
    DirUnderstate,
    /// Remove the dirty owner from a live HitME presence vector (COD
    /// only).
    HitMeDropNode,
    /// Set the clean bit on a HitME entry whose line is held Modified
    /// (COD only).
    HitMeFalseClean,
    /// Make a calibration latency constant negative.
    CalibNegative,
    /// Make a calibration constant NaN.
    CalibNan,
    /// Swallow snoop messages, fabricating "no copy" responses so a
    /// requester completes against stale memory data.
    DropSnoop,
    /// Stall snoop messages long enough that the transaction walk blows
    /// its latency budget.
    DelaySnoop,
}

impl FaultClass {
    /// Every class, in reporting order.
    pub const ALL: [FaultClass; 11] = [
        FaultClass::MintForwarder,
        FaultClass::BreakMExclusivity,
        FaultClass::DropL3Line,
        FaultClass::ClearCoreValid,
        FaultClass::DirUnderstate,
        FaultClass::HitMeDropNode,
        FaultClass::HitMeFalseClean,
        FaultClass::CalibNegative,
        FaultClass::CalibNan,
        FaultClass::DropSnoop,
        FaultClass::DelaySnoop,
    ];

    /// Stable identifier used in plans and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::MintForwarder => "mint-forwarder",
            FaultClass::BreakMExclusivity => "break-m-exclusivity",
            FaultClass::DropL3Line => "drop-l3-line",
            FaultClass::ClearCoreValid => "clear-core-valid",
            FaultClass::DirUnderstate => "dir-understate",
            FaultClass::HitMeDropNode => "hitme-drop-node",
            FaultClass::HitMeFalseClean => "hitme-false-clean",
            FaultClass::CalibNegative => "calib-negative",
            FaultClass::CalibNan => "calib-nan",
            FaultClass::DropSnoop => "drop-snoop",
            FaultClass::DelaySnoop => "delay-snoop",
        }
    }

    /// Parse a [`name`](Self::name) back into the class.
    pub fn from_name(s: &str) -> Option<FaultClass> {
        FaultClass::ALL.iter().copied().find(|c| c.name() == s)
    }

    /// Whether the class corrupts in-memory-directory state and therefore
    /// only applies to directory-enabled (COD) modes.
    pub fn requires_directory(self) -> bool {
        matches!(self, FaultClass::DirUnderstate)
    }

    /// Whether the class corrupts HitME state (COD with HitME enabled).
    pub fn requires_hitme(self) -> bool {
        matches!(self, FaultClass::HitMeDropNode | FaultClass::HitMeFalseClean)
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A reproducible fault-injection campaign description.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed deriving every per-trial choice (target line, actors).
    pub seed: u64,
    /// Trials per (mode, class) matrix cell.
    pub trials: u32,
    /// Fault classes to exercise.
    pub classes: Vec<FaultClass>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xC0FFEE,
            trials: 4,
            classes: FaultClass::ALL.to_vec(),
        }
    }
}

impl FaultPlan {
    /// A minimal single-trial plan for CI smoke runs.
    pub fn quick() -> Self {
        FaultPlan { trials: 1, ..FaultPlan::default() }
    }

    /// Serialize to the plan text format.
    pub fn to_text(&self) -> String {
        let classes: Vec<&str> = self.classes.iter().map(|c| c.name()).collect();
        format!(
            "# hswx fault-injection plan\nseed = {:#x}\ntrials = {}\nclasses = {}\n",
            self.seed,
            self.trials,
            classes.join(", ")
        )
    }

    /// Parse the plan text format. Unknown keys and class names are
    /// errors; omitted keys keep their [`Default`] values.
    pub fn from_text(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`, got {raw:?}", lineno + 1));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    plan.seed = parse_u64(value)
                        .ok_or_else(|| format!("line {}: bad seed {value:?}", lineno + 1))?;
                }
                "trials" => {
                    plan.trials = parse_u64(value)
                        .and_then(|v| u32::try_from(v).ok())
                        .filter(|&v| v > 0)
                        .ok_or_else(|| format!("line {}: bad trials {value:?}", lineno + 1))?;
                }
                "classes" => {
                    let mut classes = Vec::new();
                    for name in value.split(',') {
                        let name = name.trim();
                        if name.is_empty() {
                            continue;
                        }
                        let class = FaultClass::from_name(name).ok_or_else(|| {
                            format!("line {}: unknown fault class {name:?}", lineno + 1)
                        })?;
                        if !classes.contains(&class) {
                            classes.push(class);
                        }
                    }
                    if classes.is_empty() {
                        return Err(format!("line {}: empty class list", lineno + 1));
                    }
                    plan.classes = classes;
                }
                other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
            }
        }
        Ok(plan)
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let plan = FaultPlan { seed: 0xDEAD, trials: 7, classes: FaultClass::ALL.to_vec() };
        let parsed = FaultPlan::from_text(&plan.to_text()).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn parse_subset_and_comments() {
        let text = "# campaign\nseed = 42\nclasses = drop-snoop, calib-nan # msg faults\n";
        let plan = FaultPlan::from_text(text).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.trials, FaultPlan::default().trials);
        assert_eq!(plan.classes, vec![FaultClass::DropSnoop, FaultClass::CalibNan]);
    }

    #[test]
    fn rejects_unknown_class_and_key() {
        assert!(FaultPlan::from_text("classes = flip-bits\n").is_err());
        assert!(FaultPlan::from_text("sed = 1\n").is_err());
    }

    #[test]
    fn every_class_name_round_trips() {
        for class in FaultClass::ALL {
            assert_eq!(FaultClass::from_name(class.name()), Some(class));
        }
    }
}
