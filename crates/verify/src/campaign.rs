//! Seeded fault-injection campaigns with detection-coverage reporting.
//!
//! For every (coherence mode × fault class) cell the campaign builds a
//! fresh dual-socket system, runs a deterministic warmup that creates the
//! protocol state the fault needs (cross-node sharing, migratory dirty
//! lines, live HitME entries), injects the corruption through the
//! [`hswx_haswell::inject`] hooks, then replays follow-up accesses under a
//! strict [`MonitorConfig`] and records whether the runtime monitor
//! converted the corruption into a typed [`hswx_haswell::SimError`].
//!
//! Every choice derives from the plan seed, so a failing cell reproduces
//! with the same plan text.

use crate::plan::{FaultClass, FaultPlan};
use hswx_coherence::{DirState, MesifState, NodeSet};
use hswx_engine::{DetRng, SimTime};
use hswx_haswell::{CoherenceMode, MonitorConfig, System, SystemConfig};
use hswx_mem::{CoreId, LineAddr, NodeId};
use std::fmt;

/// Result of one campaign matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The fault class does not exist in this mode (no directory / HitME).
    NotApplicable,
    /// Trials ran; `detected + missed` equals the plan's trial count.
    Tested {
        /// Trials where the monitor raised an error.
        detected: u32,
        /// Trials that completed silently — a detection gap.
        missed: u32,
        /// Example detection message from the first detected trial.
        example: Option<String>,
    },
}

/// One (mode, class) cell of the coverage matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Coherence mode the trials ran under.
    pub mode: CoherenceMode,
    /// Injected fault class.
    pub class: FaultClass,
    /// Aggregated trial outcome.
    pub outcome: CellOutcome,
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Seed the campaign derived every choice from.
    pub seed: u64,
    /// Trials per cell.
    pub trials: u32,
    /// All matrix cells, class-major in [`FaultClass::ALL`] order.
    pub cells: Vec<MatrixCell>,
}

impl CampaignReport {
    /// Whether every applicable cell detected every trial.
    pub fn all_detected(&self) -> bool {
        self.cells.iter().all(|c| match c.outcome {
            CellOutcome::NotApplicable => true,
            CellOutcome::Tested { missed, .. } => missed == 0,
        })
    }

    /// Cells with at least one missed trial.
    pub fn missed_cells(&self) -> Vec<&MatrixCell> {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Tested { missed, .. } if missed > 0))
            .collect()
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let modes = CoherenceMode::all();
        writeln!(
            f,
            "fault-injection detection matrix ({} trial{} per cell, seed {:#x})",
            self.trials,
            if self.trials == 1 { "" } else { "s" },
            self.seed
        )?;
        writeln!(f)?;
        write!(f, "{:<22}", "fault class")?;
        for mode in modes {
            write!(f, "{:>14}", mode.label())?;
        }
        writeln!(f)?;
        let classes: Vec<FaultClass> = {
            let mut v = Vec::new();
            for cell in &self.cells {
                if !v.contains(&cell.class) {
                    v.push(cell.class);
                }
            }
            v
        };
        for class in classes {
            write!(f, "{:<22}", class.name())?;
            for mode in modes {
                let cell = self.cells.iter().find(|c| c.class == class && c.mode == mode);
                let text = match cell.map(|c| &c.outcome) {
                    Some(CellOutcome::NotApplicable) => "n/a".to_string(),
                    Some(CellOutcome::Tested { detected, missed, .. }) => {
                        format!("{detected}/{}", detected + missed)
                    }
                    None => "-".to_string(),
                };
                write!(f, "{text:>14}")?;
            }
            writeln!(f)?;
        }
        writeln!(f)?;
        if self.all_detected() {
            writeln!(f, "all injected faults detected")?;
        } else {
            for cell in self.missed_cells() {
                writeln!(
                    f,
                    "DETECTION GAP: {} in {} mode",
                    cell.class.name(),
                    cell.mode.label()
                )?;
            }
        }
        Ok(())
    }
}

/// Run `plan` across all three coherence modes and collect the matrix.
pub fn run_campaign(plan: &FaultPlan) -> CampaignReport {
    let mut cells = Vec::new();
    for &class in &plan.classes {
        for mode in CoherenceMode::all() {
            let proto = mode.protocol();
            let applicable = (!class.requires_directory() || proto.directory)
                && (!class.requires_hitme() || proto.hitme);
            if !applicable {
                cells.push(MatrixCell { mode, class, outcome: CellOutcome::NotApplicable });
                continue;
            }
            let mut detected = 0;
            let mut missed = 0;
            let mut example = None;
            for trial in 0..plan.trials {
                match run_trial(mode, class, plan.seed, trial) {
                    Some(msg) => {
                        detected += 1;
                        example.get_or_insert(msg);
                    }
                    None => missed += 1,
                }
            }
            cells.push(MatrixCell {
                mode,
                class,
                outcome: CellOutcome::Tested { detected, missed, example },
            });
        }
    }
    CampaignReport { seed: plan.seed, trials: plan.trials, cells }
}

/// One injection trial. Returns the detection message, or `None` when the
/// corruption went unnoticed (or could not even be armed — an unarmable
/// fault counts as a miss so campaign setups cannot silently rot).
fn run_trial(mode: CoherenceMode, class: FaultClass, seed: u64, trial: u32) -> Option<String> {
    let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
    let salt = ((class as u64) << 40) ^ ((mode as u64) << 32) ^ trial as u64;
    let mut rng = DetRng::new(seed).fork(salt);

    let home = NodeId(0);
    let base = sys.topo.numa_base(home).line();
    let line = LineAddr(base.0 + rng.below(1 << 14));
    // Neighbor used by follow-up accesses: close enough to stay homed in
    // node 0, far enough to never collide with the target line's sets.
    let follow = LineAddr(line.0 + 1 + rng.below(32));

    let core_home = sys.topo.cores_of_node(home)[0];
    let far_node = NodeId(sys.topo.n_nodes() - 1);
    let core_far = sys.topo.cores_of_node(far_node)[0];

    let mut t = SimTime::ZERO;

    // --- warmup + injection (monitor off: the warmup is fault-free) ---
    let armed = match class {
        FaultClass::MintForwarder | FaultClass::BreakMExclusivity => {
            // Home node reads (E), far node reads (forwarded: far=F,
            // home demotes to S). Corrupt the home's Shared copy.
            t = sys.read(core_home, line, t).done;
            t = sys.read(core_far, line, t).done;
            let state = if class == FaultClass::MintForwarder {
                MesifState::Forward
            } else {
                MesifState::Modified
            };
            sys.inject_l3_state(home, line, state)
        }
        FaultClass::DropL3Line => {
            t = sys.read(core_home, line, t).done;
            sys.inject_drop_l3(home, line)
        }
        FaultClass::ClearCoreValid => {
            t = sys.read(core_home, line, t).done;
            sys.inject_cv(home, line, 0)
        }
        FaultClass::DirUnderstate => {
            // Far node takes the line (E grant marks the directory).
            t = sys.read(core_far, line, t).done;
            sys.inject_dir_state(line, DirState::RemoteInvalid);
            sys.l3_meta(far_node, line).is_some()
        }
        FaultClass::HitMeDropNode | FaultClass::HitMeFalseClean => {
            // Build a migratory dirty line with a live HitME entry:
            // remote node 1 takes it E (directory -> SnoopAll), the far
            // node's read then snoops and gets a cross-node forward
            // (AllocateShared fires), and its RFO turns the entry into
            // {far}, clean=false with node-level M.
            let mid_node = NodeId(1);
            let core_mid = sys.topo.cores_of_node(mid_node)[0];
            t = sys.read(core_mid, line, t).done;
            t = sys.read(core_far, line, t).done;
            t = sys.write(core_far, line, t).done;
            let entry_ok = sys
                .hitme_entry(line)
                .is_some_and(|e| !e.clean && e.nodes.contains(far_node));
            let dirty = sys.l3_meta(far_node, line).map(|m| m.state) == Some(MesifState::Modified);
            entry_ok
                && dirty
                && if class == FaultClass::HitMeDropNode {
                    sys.inject_hitme(line, |e| e.nodes = NodeSet::only(home))
                } else {
                    sys.inject_hitme(line, |e| e.clean = true)
                }
        }
        FaultClass::CalibNegative => {
            t = sys.read(core_home, line, t).done;
            sys.inject_calib(|c| c.t_qpi = -3.0);
            true
        }
        FaultClass::CalibNan => {
            t = sys.read(core_home, line, t).done;
            sys.inject_calib(|c| c.t_l3_array = f64::NAN);
            true
        }
        FaultClass::DropSnoop | FaultClass::DelaySnoop => {
            // Far node owns the line dirty; the next read must snoop it.
            t = sys.write(core_far, line, t).done;
            let dirty = sys.l3_meta(far_node, line).map(|m| m.state) == Some(MesifState::Modified);
            if class == FaultClass::DropSnoop {
                sys.inject_snoop_drop(16);
            } else {
                sys.inject_snoop_delay(1_000_000.0, 16);
            }
            dirty
        }
    };
    if !armed {
        return None;
    }

    // --- detection: replay accesses under the strict monitor ---
    sys.enable_monitor(MonitorConfig::strict());
    let ops: Vec<(CoreId, LineAddr)> = match class {
        // Message faults only manifest on an access that needs the snoop.
        FaultClass::DropSnoop | FaultClass::DelaySnoop => vec![(core_home, line)],
        // State corruptions are visible to the global scan from any access.
        _ => vec![(core_home, follow), (core_far, follow)],
    };
    for (core, l) in ops {
        match sys.try_read(core, l, t) {
            Err(e) => return Some(e.to_string()),
            Ok(out) => t = out.done,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_detects_everything() {
        let report = run_campaign(&FaultPlan::quick());
        assert!(report.all_detected(), "{report}");
    }

    #[test]
    fn report_renders_na_for_directory_classes_outside_cod() {
        let plan = FaultPlan { trials: 1, classes: vec![FaultClass::DirUnderstate], ..FaultPlan::default() };
        let report = run_campaign(&plan);
        let na = report
            .cells
            .iter()
            .filter(|c| c.outcome == CellOutcome::NotApplicable)
            .count();
        assert_eq!(na, 2, "source-snoop and home-snoop have no directory");
        assert!(report.all_detected(), "{report}");
    }
}
