//! Seeded fault-injection campaigns with detection *and recovery*
//! coverage reporting.
//!
//! For every (coherence mode × fault class) cell the campaign builds a
//! fresh dual-socket system, runs a deterministic warmup that creates the
//! protocol state the fault needs (cross-node sharing, migratory dirty
//! lines, live HitME entries), injects the fault through the
//! [`hswx_haswell::inject`] hooks, then verifies the expected response
//! for the class's [`FaultKind`]:
//!
//! * **Detect** — follow-up accesses replay under a strict
//!   [`MonitorConfig`] and the runtime monitor must convert the
//!   corruption into a typed [`hswx_haswell::SimError`].
//! * **Recover** — the trial runs *twice* from the same seed, once clean
//!   and once with the transient armed; the faulted run must complete
//!   with identical data sources, statistics, and
//!   [`hswx_haswell::System::state_digest`] (recovery is timing-only),
//!   and its recovery counters must prove the fault actually fired.
//! * **Contain** — the fault must surface as exactly the documented typed
//!   error, after which the rest of the simulation keeps working and (for
//!   poisoning) protocol state is bit-identical to before the access.
//!
//! Every choice derives from the plan seed, so a failing cell reproduces
//! with the same plan text.

use crate::plan::{FaultClass, FaultKind, FaultPlan};
use hswx_coherence::{DirState, MesifState, NodeSet};
use hswx_engine::shard::QueuePolicy;
use hswx_engine::{DetRng, MetricsRegistry, SimTime};
use hswx_haswell::{
    Access, CoherenceMode, MonitorConfig, RecoveryStats, ShardConfig, SimError, System,
    SystemConfig,
};
use hswx_mem::{CoreId, LineAddr, NodeId};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Result of one campaign matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The fault class does not exist in this mode (no directory / HitME).
    NotApplicable,
    /// Trials ran; `detected + missed` equals the plan's trial count.
    Tested {
        /// Trials where the monitor raised an error.
        detected: u32,
        /// Trials that completed silently — a detection gap.
        missed: u32,
        /// Example detection message from the first detected trial.
        example: Option<String>,
    },
}

/// One (mode, class) cell of the coverage matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Coherence mode the trials ran under.
    pub mode: CoherenceMode,
    /// Injected fault class.
    pub class: FaultClass,
    /// Aggregated trial outcome.
    pub outcome: CellOutcome,
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Seed the campaign derived every choice from.
    pub seed: u64,
    /// Trials per cell.
    pub trials: u32,
    /// All matrix cells, class-major in [`FaultClass::ALL`] order.
    pub cells: Vec<MatrixCell>,
    /// Recovery-event totals across every trial system (clean and
    /// faulted), collected through the metrics registry the campaign
    /// installs around its trials.
    pub recovery: RecoveryStats,
}

impl CampaignReport {
    /// Whether every applicable cell detected every trial.
    pub fn all_detected(&self) -> bool {
        self.cells.iter().all(|c| match c.outcome {
            CellOutcome::NotApplicable => true,
            CellOutcome::Tested { missed, .. } => missed == 0,
        })
    }

    /// Cells with at least one missed trial.
    pub fn missed_cells(&self) -> Vec<&MatrixCell> {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Tested { missed, .. } if missed > 0))
            .collect()
    }
}

impl CampaignReport {
    /// Distinct classes of this report, in first-seen order, filtered by
    /// whether they match `kinds`.
    fn classes_of(&self, kinds: &[FaultKind]) -> Vec<FaultClass> {
        let mut v = Vec::new();
        for cell in &self.cells {
            if kinds.contains(&cell.class.kind()) && !v.contains(&cell.class) {
                v.push(cell.class);
            }
        }
        v
    }

    fn write_matrix(&self, f: &mut fmt::Formatter<'_>, classes: &[FaultClass]) -> fmt::Result {
        let modes = CoherenceMode::all();
        write!(f, "{:<22}", "fault class")?;
        for mode in modes {
            write!(f, "{:>14}", mode.label())?;
        }
        writeln!(f)?;
        for &class in classes {
            write!(f, "{:<22}", class.name())?;
            for mode in modes {
                let cell = self.cells.iter().find(|c| c.class == class && c.mode == mode);
                let text = match cell.map(|c| &c.outcome) {
                    Some(CellOutcome::NotApplicable) => "n/a".to_string(),
                    Some(CellOutcome::Tested { detected, missed, .. }) => {
                        format!("{detected}/{}", detected + missed)
                    }
                    None => "-".to_string(),
                };
                write!(f, "{text:>14}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }

    /// Machine-readable JSON rendering (for `hswx faultcheck --json` and
    /// CI artifacts). Hand-rolled like the perf baseline writer — no
    /// external dependency, stable key order.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str(&format!("  \"all_passed\": {},\n", self.all_detected()));
        let r = &self.recovery;
        out.push_str(&format!(
            "  \"recovery\": {{\"crc_messages\": {}, \"crc_retries\": {}, \
             \"link_failures\": {}, \"dir_retries\": {}, \"hitme_retries\": {}, \
             \"poison_blocked\": {}, \"shard_restarts\": {}, \
             \"shard_watchdog_kills\": {}}},\n",
            r.crc_messages,
            r.crc_retries,
            r.link_failures,
            r.dir_retries,
            r.hitme_retries,
            r.poison_blocked,
            r.shard_restarts,
            r.shard_watchdog_kills
        ));
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let outcome = match &cell.outcome {
                CellOutcome::NotApplicable => "\"status\": \"n/a\"".to_string(),
                CellOutcome::Tested { detected, missed, example } => {
                    let ex = example
                        .as_ref()
                        .map(|e| format!(", \"example\": \"{}\"", esc(e)))
                        .unwrap_or_default();
                    format!("\"status\": \"tested\", \"passed\": {detected}, \"failed\": {missed}{ex}")
                }
            };
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"class\": \"{}\", \"kind\": \"{}\", {}}}{}\n",
                cell.mode.label(),
                cell.class.name(),
                cell.class.kind().name(),
                outcome,
                if i + 1 == self.cells.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault-injection campaign ({} trial{} per cell, seed {:#x})",
            self.trials,
            if self.trials == 1 { "" } else { "s" },
            self.seed
        )?;
        let detect = self.classes_of(&[FaultKind::Detect]);
        if !detect.is_empty() {
            writeln!(f)?;
            writeln!(f, "detection matrix (monitor must raise a typed error):")?;
            self.write_matrix(f, &detect)?;
        }
        let heal = self.classes_of(&[FaultKind::Recover, FaultKind::Contain]);
        if !heal.is_empty() {
            writeln!(f)?;
            writeln!(f, "recovery matrix (transients must heal transparently or be contained):")?;
            self.write_matrix(f, &heal)?;
        }
        writeln!(f)?;
        let r = &self.recovery;
        if r.total_events() > 0 {
            writeln!(
                f,
                "recovery events across all trials: {} CRC retries over {} messages, \
                 {} link failures, {} directory re-reads, {} HitME re-reads, \
                 {} poisoned accesses blocked, {} shard restarts ({} by watchdog)",
                r.crc_retries,
                r.crc_messages,
                r.link_failures,
                r.dir_retries,
                r.hitme_retries,
                r.poison_blocked,
                r.shard_restarts,
                r.shard_watchdog_kills
            )?;
        }
        if self.all_detected() {
            writeln!(f, "all injected faults detected or recovered")?;
        } else {
            for cell in self.missed_cells() {
                let label = match cell.class.kind() {
                    FaultKind::Detect => "DETECTION GAP",
                    FaultKind::Recover => "RECOVERY GAP",
                    FaultKind::Contain => "CONTAINMENT GAP",
                };
                writeln!(f, "{label}: {} in {} mode", cell.class.name(), cell.mode.label())?;
            }
        }
        Ok(())
    }
}

/// Run `plan` across all three coherence modes and collect the matrix.
///
/// Every trial system flushes its counters (including the recovery
/// taxonomy) into a metrics registry scoped to this call; the aggregate
/// lands in [`CampaignReport::recovery`] and, if an ambient registry was
/// already installed (e.g. by a campaign supervisor job), the counters
/// are forwarded into it as well.
pub fn run_campaign(plan: &FaultPlan) -> CampaignReport {
    let reg = Arc::new(MetricsRegistry::new());
    let scope = MetricsRegistry::set_ambient(Arc::clone(&reg));
    let mut cells = Vec::new();
    for &class in &plan.classes {
        for mode in CoherenceMode::all() {
            let proto = mode.protocol();
            let applicable = (!class.requires_directory() || proto.directory)
                && (!class.requires_hitme() || proto.hitme);
            if !applicable {
                cells.push(MatrixCell { mode, class, outcome: CellOutcome::NotApplicable });
                continue;
            }
            let mut detected = 0;
            let mut missed = 0;
            let mut example = None;
            for trial in 0..plan.trials {
                match run_trial(mode, class, plan.seed, trial) {
                    Some(msg) => {
                        detected += 1;
                        example.get_or_insert(msg);
                    }
                    None => missed += 1,
                }
            }
            cells.push(MatrixCell {
                mode,
                class,
                outcome: CellOutcome::Tested { detected, missed, example },
            });
        }
    }
    drop(scope);
    let counters = reg.counters_snapshot();
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };
    let recovery = RecoveryStats {
        crc_messages: get("recovery.crc_messages"),
        crc_retries: get("recovery.crc_retries"),
        link_failures: get("recovery.link_failures"),
        dir_retries: get("recovery.dir_retries"),
        hitme_retries: get("recovery.hitme_retries"),
        poison_blocked: get("recovery.poison_blocked"),
        shard_restarts: get("recovery.shard_restarts"),
        shard_watchdog_kills: get("recovery.shard_watchdog_kills"),
    };
    if let Some(outer) = MetricsRegistry::ambient() {
        for (name, v) in &counters {
            outer.add(name, *v);
        }
    }
    CampaignReport { seed: plan.seed, trials: plan.trials, cells, recovery }
}

/// One injection trial, routed by the class's verification strategy.
/// Returns the pass message, or `None` when the expected response did not
/// materialise (or the fault could not even be armed — an unarmable fault
/// counts as a miss so campaign setups cannot silently rot).
fn run_trial(mode: CoherenceMode, class: FaultClass, seed: u64, trial: u32) -> Option<String> {
    match class {
        // Shard-runtime faults verify against the sharded batch path,
        // not single-access walks.
        FaultClass::ShardPanic | FaultClass::ShardWatchdog => {
            shard_recover_trial(mode, class, seed, trial)
        }
        FaultClass::ShardQueueOverflow => shard_contain_trial(mode, class, seed, trial),
        _ => match class.kind() {
            FaultKind::Detect => detect_trial(mode, class, seed, trial),
            FaultKind::Recover => recover_trial(mode, class, seed, trial),
            FaultKind::Contain => contain_trial(mode, class, seed, trial),
        },
    }
}

fn trial_salt(mode: CoherenceMode, class: FaultClass, trial: u32) -> u64 {
    ((class as u64) << 40) ^ ((mode as u64) << 32) ^ trial as u64
}

/// Detect trial: corrupt protocol state or messages, then replay accesses
/// under the strict monitor, which must raise a typed error.
fn detect_trial(mode: CoherenceMode, class: FaultClass, seed: u64, trial: u32) -> Option<String> {
    let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
    let salt = trial_salt(mode, class, trial);
    let mut rng = DetRng::new(seed).fork(salt);

    let home = NodeId(0);
    let base = sys.topo.numa_base(home).line();
    let line = LineAddr(base.0 + rng.below(1 << 14));
    // Neighbor used by follow-up accesses: close enough to stay homed in
    // node 0, far enough to never collide with the target line's sets.
    let follow = LineAddr(line.0 + 1 + rng.below(32));

    let core_home = sys.topo.cores_of_node(home)[0];
    let far_node = NodeId(sys.topo.n_nodes() - 1);
    let core_far = sys.topo.cores_of_node(far_node)[0];

    let mut t = SimTime::ZERO;

    // --- warmup + injection (monitor off: the warmup is fault-free) ---
    let armed = match class {
        FaultClass::MintForwarder | FaultClass::BreakMExclusivity => {
            // Home node reads (E), far node reads (forwarded: far=F,
            // home demotes to S). Corrupt the home's Shared copy.
            t = sys.read(core_home, line, t).done;
            t = sys.read(core_far, line, t).done;
            let state = if class == FaultClass::MintForwarder {
                MesifState::Forward
            } else {
                MesifState::Modified
            };
            sys.inject_l3_state(home, line, state)
        }
        FaultClass::DropL3Line => {
            t = sys.read(core_home, line, t).done;
            sys.inject_drop_l3(home, line)
        }
        FaultClass::ClearCoreValid => {
            t = sys.read(core_home, line, t).done;
            sys.inject_cv(home, line, 0)
        }
        FaultClass::DirUnderstate => {
            // Far node takes the line (E grant marks the directory).
            t = sys.read(core_far, line, t).done;
            sys.inject_dir_state(line, DirState::RemoteInvalid);
            sys.l3_meta(far_node, line).is_some()
        }
        FaultClass::HitMeDropNode | FaultClass::HitMeFalseClean => {
            // Build a migratory dirty line with a live HitME entry:
            // remote node 1 takes it E (directory -> SnoopAll), the far
            // node's read then snoops and gets a cross-node forward
            // (AllocateShared fires), and its RFO turns the entry into
            // {far}, clean=false with node-level M.
            let mid_node = NodeId(1);
            let core_mid = sys.topo.cores_of_node(mid_node)[0];
            t = sys.read(core_mid, line, t).done;
            t = sys.read(core_far, line, t).done;
            t = sys.write(core_far, line, t).done;
            let entry_ok = sys
                .hitme_entry(line)
                .is_some_and(|e| !e.clean && e.nodes.contains(far_node));
            let dirty = sys.l3_meta(far_node, line).map(|m| m.state) == Some(MesifState::Modified);
            entry_ok
                && dirty
                && if class == FaultClass::HitMeDropNode {
                    sys.inject_hitme(line, |e| e.nodes = NodeSet::only(home))
                } else {
                    sys.inject_hitme(line, |e| e.clean = true)
                }
        }
        FaultClass::CalibNegative => {
            t = sys.read(core_home, line, t).done;
            sys.inject_calib(|c| c.t_qpi = -3.0);
            true
        }
        FaultClass::CalibNan => {
            t = sys.read(core_home, line, t).done;
            sys.inject_calib(|c| c.t_l3_array = f64::NAN);
            true
        }
        FaultClass::DropSnoop | FaultClass::DelaySnoop => {
            // Far node owns the line dirty; the next read must snoop it.
            t = sys.write(core_far, line, t).done;
            let dirty = sys.l3_meta(far_node, line).map(|m| m.state) == Some(MesifState::Modified);
            if class == FaultClass::DropSnoop {
                sys.inject_snoop_drop(16);
            } else {
                sys.inject_snoop_delay(1_000_000.0, 16);
            }
            dirty
        }
        FaultClass::QpiCrc
        | FaultClass::QpiCrcStorm
        | FaultClass::DirGlitch
        | FaultClass::HitMeGlitch
        | FaultClass::PoisonLine
        | FaultClass::ShardPanic
        | FaultClass::ShardWatchdog
        | FaultClass::ShardQueueOverflow => {
            unreachable!("{} is routed to a recover/contain/shard trial", class.name())
        }
    };
    if !armed {
        return None;
    }

    // --- detection: replay accesses under the strict monitor ---
    sys.enable_monitor(MonitorConfig::strict());
    let ops: Vec<(CoreId, LineAddr)> = match class {
        // Message faults only manifest on an access that needs the snoop.
        FaultClass::DropSnoop | FaultClass::DelaySnoop => vec![(core_home, line)],
        // State corruptions are visible to the global scan from any access.
        _ => vec![(core_home, follow), (core_far, follow)],
    };
    for (core, l) in ops {
        match sys.try_read(core, l, t) {
            Err(e) => return Some(e.to_string()),
            Ok(out) => t = out.done,
        }
    }
    None
}

/// Recover trial: run the identical access sequence twice from the same
/// seed — once clean, once with the transient armed. Recovery must be
/// timing-only: data sources, statistics, and the protocol state digest
/// agree across the pair, and the faulted run's recovery counters must
/// prove the transient actually fired.
fn recover_trial(mode: CoherenceMode, class: FaultClass, seed: u64, trial: u32) -> Option<String> {
    let mut rng = DetRng::new(seed).fork(trial_salt(mode, class, trial));
    let errs = 1 + rng.below(4) as u32;
    let offset = rng.below(1 << 14);

    type RunResult = (Vec<String>, u64, String, hswx_haswell::RecoveryStats);
    let run = |inject: bool| -> Result<RunResult, String> {
        let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
        let home = NodeId(0);
        let line = LineAddr(sys.topo.numa_base(home).line().0 + offset);
        let core_home = sys.topo.cores_of_node(home)[0];
        let far_node = NodeId(sys.topo.n_nodes() - 1);
        let core_far = sys.topo.cores_of_node(far_node)[0];

        // Warmup: the home socket dirties the line, so the far read below
        // crosses QPI and (with a directory) consults it at the home agent.
        let mut t = sys.write(core_home, line, SimTime::ZERO).done;
        if inject {
            match class {
                FaultClass::QpiCrc => sys.inject_qpi_crc(errs),
                FaultClass::DirGlitch => sys.inject_dir_glitch(errs),
                FaultClass::HitMeGlitch => sys.inject_hitme_glitch(errs),
                _ => unreachable!("{} is not a recoverable class", class.name()),
            }
        }
        sys.enable_monitor(MonitorConfig::strict());
        let mut sources = Vec::new();
        for (core, l) in [(core_far, line), (core_home, line), (core_far, LineAddr(line.0 + 7))] {
            let out = sys.try_read(core, l, t).map_err(|e| e.to_string())?;
            sources.push(format!("{:?}", out.source));
            t = out.done;
        }
        Ok((sources, sys.state_digest(), format!("{:?}", sys.stats), sys.recovery))
    };

    let clean = run(false).ok()?;
    let faulty = run(true).ok()?;
    if clean.0 != faulty.0 || clean.1 != faulty.1 || clean.2 != faulty.2 {
        return None; // recovery perturbed the outcome — a recovery gap
    }
    if clean.3.total_events() != 0 {
        return None; // the clean run must not count recovery events
    }
    let fired = match class {
        FaultClass::QpiCrc => faulty.3.crc_retries,
        FaultClass::DirGlitch => faulty.3.dir_retries,
        FaultClass::HitMeGlitch => faulty.3.hitme_retries,
        _ => unreachable!(),
    };
    if fired == 0 {
        return None; // the transient never fired — the setup rotted
    }
    Some(format!(
        "{} x{fired} healed transparently; digest {:#018x} matches clean run",
        class.name(),
        faulty.1
    ))
}

/// Contain trial: the fault must surface as exactly the documented typed
/// error, leave protocol state untouched, and not leak into later walks.
fn contain_trial(mode: CoherenceMode, class: FaultClass, seed: u64, trial: u32) -> Option<String> {
    let mut rng = DetRng::new(seed).fork(trial_salt(mode, class, trial));
    let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
    let home = NodeId(0);
    let line = LineAddr(sys.topo.numa_base(home).line().0 + rng.below(1 << 14));
    let core_home = sys.topo.cores_of_node(home)[0];
    let far_node = NodeId(sys.topo.n_nodes() - 1);
    let core_far = sys.topo.cores_of_node(far_node)[0];

    let t = sys.write(core_home, line, SimTime::ZERO).done;
    sys.enable_monitor(MonitorConfig::strict());
    match class {
        FaultClass::QpiCrcStorm => {
            // Arm exactly enough corruptions to overflow the retry buffer
            // on the first QPI message and no more — leftovers would leak
            // into the containment-check access below.
            let max = sys.link_retry_policy().max_retries;
            sys.inject_qpi_crc(max + 1);
            let err = match sys.try_read(core_far, line, t) {
                Err(e @ SimError::QpiLinkFailure { .. }) => e,
                Err(_) | Ok(_) => return None,
            };
            if sys.recovery.link_failures != 1 {
                return None;
            }
            // Containment: the failure was consumed with the walk; an
            // unrelated access on a healthy link succeeds.
            sys.try_read(core_home, LineAddr(line.0 + 9), t).ok()?;
            Some(err.to_string())
        }
        FaultClass::PoisonLine => {
            let digest_before = sys.state_digest();
            sys.inject_poison(line);
            let read_err = match sys.try_read(core_far, line, t) {
                Err(e @ SimError::Poisoned { .. }) => e,
                Err(_) | Ok(_) => return None,
            };
            if sys.try_write(core_home, line, t).is_ok() {
                return None; // writes must be blocked too
            }
            if sys.state_digest() != digest_before {
                return None; // the blocked walks mutated protocol state
            }
            // Neighbours are unaffected, and page retirement restores access.
            sys.try_read(core_far, LineAddr(line.0 + 3), t).ok()?;
            if !sys.clear_poison(line) {
                return None;
            }
            sys.try_read(core_far, line, t).ok()?;
            Some(read_err.to_string())
        }
        _ => unreachable!("{} is not a containment class", class.name()),
    }
}

/// A batch whose accesses round-robin over every core, guaranteeing each
/// NUMA-node shard a healthy slice of local work (so injected shard
/// faults always have something to fire on).
fn shard_batch(cfg: &SystemConfig, rng: &mut DetRng) -> Vec<Access> {
    let n_cores = cfg.n_cores();
    let span = rng.below(1 << 16);
    (0..192u64)
        .map(|i| {
            let core = CoreId((i as u16) % n_cores);
            let line = LineAddr((i * 131 + span * 7) % (1 << 18));
            if i % 4 == 3 {
                Access::write(core, line)
            } else {
                Access::read(core, line)
            }
        })
        .collect()
}

/// Shard recover trial: a batch runs through the sharded runtime with an
/// injected shard panic or watchdog stall; restart-from-snapshot plus
/// message-log replay must heal it **bit-identically** to the sequential
/// reference (outcome, statistics, state digest), and the recovery
/// counters must prove the fault actually fired.
fn shard_recover_trial(
    mode: CoherenceMode,
    class: FaultClass,
    seed: u64,
    trial: u32,
) -> Option<String> {
    let mut rng = DetRng::new(seed).fork(trial_salt(mode, class, trial));
    let cfg = SystemConfig::e5_2680_v3(mode);
    let batch = shard_batch(&cfg, &mut rng);
    let mut seq = System::new(cfg.clone());
    let want = seq.run_batch_seq(&batch);

    let mut sys = System::new(cfg);
    let target = rng.below(u64::from(sys.topo.n_nodes())) as u16;
    let mut scfg = ShardConfig::with_threads(2);
    match class {
        FaultClass::ShardPanic => scfg.faults.panic_at = Some((target, rng.below(12) as u32)),
        FaultClass::ShardWatchdog => {
            scfg.faults.stall_shard = Some(target);
            scfg.watchdog = Some(Duration::from_millis(25));
        }
        _ => unreachable!("{} is not a shard-recover class", class.name()),
    }
    let got = sys.run_batch_sharded(&batch, &scfg).ok()?;
    if got.outcome != want || sys.state_digest() != seq.state_digest() || sys.stats != seq.stats {
        return None; // recovery perturbed the outcome — a recovery gap
    }
    let fired = match class {
        FaultClass::ShardPanic => sys.recovery.shard_restarts,
        FaultClass::ShardWatchdog => sys.recovery.shard_watchdog_kills,
        _ => unreachable!(),
    };
    if fired == 0 {
        return None; // the injected fault never fired — the setup rotted
    }
    Some(format!(
        "shard {target} {} x{fired} healed by restart-from-snapshot; \
         outcome bit-identical to sequential dispatch",
        class.name()
    ))
}

/// Shard contain trial: a deterministic hard queue overflow must abort
/// the batch with exactly [`SimError::ShardFailed`] *before* any
/// dispatch — simulated state untouched — and the same system must run
/// the batch cleanly afterwards.
fn shard_contain_trial(
    mode: CoherenceMode,
    class: FaultClass,
    seed: u64,
    trial: u32,
) -> Option<String> {
    let mut rng = DetRng::new(seed).fork(trial_salt(mode, class, trial));
    let cfg = SystemConfig::e5_2680_v3(mode);
    let batch = shard_batch(&cfg, &mut rng);
    let mut sys = System::new(cfg.clone());
    let digest_before = sys.state_digest();

    // Hard capacity far below the soft stall threshold: the planner's
    // very first chunk overflows a channel deterministically.
    let mut scfg = ShardConfig::with_threads(2);
    scfg.queue = QueuePolicy { capacity: 2, stall_at: 1_000 };
    let err = match sys.run_batch_sharded(&batch, &scfg) {
        Err(e @ SimError::ShardFailed { .. }) => e,
        Err(_) | Ok(_) => return None,
    };
    if let SimError::ShardFailed { restarts, .. } = &err {
        if *restarts != 0 {
            return None; // deterministic failures must not burn restarts
        }
    }
    if sys.state_digest() != digest_before || sys.recovery.shard_restarts != 0 {
        return None; // the aborted batch leaked into simulated state
    }
    // Containment: the same system completes the batch under sane queue
    // bounds, matching the sequential reference.
    let clean = sys.run_batch_sharded(&batch, &ShardConfig::with_threads(2)).ok()?;
    let mut seq = System::new(cfg);
    if clean.outcome != seq.run_batch_seq(&batch) {
        return None;
    }
    Some(err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_detects_everything() {
        let report = run_campaign(&FaultPlan::quick());
        assert!(report.all_detected(), "{report}");
    }

    #[test]
    fn report_renders_na_for_directory_classes_outside_cod() {
        let plan = FaultPlan { trials: 1, classes: vec![FaultClass::DirUnderstate], ..FaultPlan::default() };
        let report = run_campaign(&plan);
        let na = report
            .cells
            .iter()
            .filter(|c| c.outcome == CellOutcome::NotApplicable)
            .count();
        assert_eq!(na, 2, "source-snoop and home-snoop have no directory");
        assert!(report.all_detected(), "{report}");
    }
}
