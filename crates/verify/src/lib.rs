//! Fault-injection campaigns for the hswx simulator.
//!
//! Drives the [`hswx_haswell::inject`] hooks against all three coherence
//! modes under the strict runtime invariant monitor and reports a
//! detection-coverage matrix (fault class × mode → detected/missed). See
//! `hswx faultcheck` for the CLI entry point and [`plan::FaultPlan`] for
//! the reproducible campaign format.

pub mod campaign;
pub mod plan;
pub mod soak;

pub use campaign::{run_campaign, CampaignReport, CellOutcome, MatrixCell};
pub use plan::{FaultClass, FaultPlan};
pub use soak::{run_soak, SoakConfig, SoakReport, SoakScenario};
