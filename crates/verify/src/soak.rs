//! Randomized chaos soak: mixed campaigns under a wall-clock budget.
//!
//! Each soak *round* derives everything from the run seed and the round
//! index, builds a fresh system under the strict invariant monitor, and
//! stresses the robustness surface end to end:
//!
//! 1. **Mixed walks** — a seeded sequence of reads and writes from random
//!    cores to random lines on every NUMA node, with recoverable
//!    transients (QPI CRC bursts, directory and HitME SRAM glitches)
//!    armed mid-stream. Transients must heal transparently: any typed
//!    error from a walk is a soak violation. Detect-only faults
//!    (dropped snoops) are deliberately *not* injected — they corrupt
//!    state by design, and the monitor correctly flagging them would
//!    drown real signal.
//! 2. **Poison containment** — some rounds poison a line, require the
//!    typed [`SimError::Poisoned`] rejection on read *and* write, verify
//!    the blocked walks changed nothing, then retire the page and
//!    continue.
//! 3. **Mid-stream snapshot/restore** — the round snapshots the live
//!    system at a seeded cut point, restores a twin, replays the identical
//!    walk suffix on both, and requires byte-identical outcomes, state
//!    digests, and re-encoded frames. The original simulator is then
//!    *killed* (dropped) and the restored twin carries the round — so
//!    every round proves restore-then-continue, not just restore.
//! 4. **File round-trips** — the frame also travels through
//!    [`System::save_snapshot`] / [`System::load_snapshot`] on disk
//!    (whole-or-absent via `atomic_write`), and the loaded system must
//!    match digests.
//! 5. **Cancellation storms** — a cancelled (or zero-deadline) ambient
//!    [`CancelToken`] is installed, a fresh system is restored under it,
//!    and every walk must surface [`SimError::Cancelled`] *without
//!    touching state* (digest unchanged afterwards).
//!
//! Any violation or mismatch is recorded in the [`SoakReport`] (and the
//! failing snapshot pair is dumped to the output directory for offline
//! diffing); [`SoakReport::ok`] gates the `hswx soak` exit code.

use hswx_engine::{CancelToken, DetRng, Heartbeat, MetricsRegistry, ShardBeat, SimTime};
use hswx_haswell::{
    Access, CoherenceMode, MonitorConfig, ShardConfig, SimError, System, SystemConfig,
    SYSTEM_SNAPSHOT_SCHEMA,
};
use hswx_mem::{CoreId, LineAddr};
use hswx_mem::NodeId;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Which chaos surface a soak run stresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SoakScenario {
    /// The classic single-walk surface: mixed walks, transients, poison,
    /// snapshot twins, cancellation storms.
    #[default]
    Mixed,
    /// The sharded batch runtime: mid-batch shard kills healed by
    /// restart-from-snapshot, watchdog kills, queue-saturation storms,
    /// and whole-run cancellation — every recovered batch checked
    /// bit-identical against sequential dispatch.
    ShardChaos,
}

impl SoakScenario {
    /// Stable identifier used by `hswx soak --scenario`.
    pub fn name(self) -> &'static str {
        match self {
            SoakScenario::Mixed => "mixed",
            SoakScenario::ShardChaos => "shard-chaos",
        }
    }

    /// Parse a [`name`](Self::name) back into the scenario.
    pub fn from_name(s: &str) -> Option<SoakScenario> {
        [SoakScenario::Mixed, SoakScenario::ShardChaos]
            .into_iter()
            .find(|sc| sc.name() == s)
    }
}

/// Parameters of one soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Wall-clock budget; at least one round always runs.
    pub budget: Duration,
    /// Seed every round derives its choices from.
    pub seed: u64,
    /// Where failing snapshot pairs (and file round-trip scratch) land.
    /// `None` uses the system temp directory for scratch and skips pair
    /// dumps.
    pub out_dir: Option<PathBuf>,
    /// Which chaos surface to stress.
    pub scenario: SoakScenario,
    /// Fixed worker-thread count for sharded batch phases. `None`
    /// rotates deterministically through 1/2/8 per round (the default
    /// chaos surface); sharded results are bit-identical either way, so
    /// this only pins the schedule being stressed. Validated at the CLI
    /// boundary via [`hswx_haswell::ShardConfig::validate`].
    pub threads: Option<usize>,
}

/// One recorded soak failure: what broke and in which round, with enough
/// context to reproduce (`hswx soak --seed N` reruns the same rounds).
#[derive(Debug, Clone)]
pub struct SoakFailure {
    /// Round index the failure occurred in.
    pub round: u64,
    /// Human-readable description.
    pub what: String,
}

/// Aggregated result of a soak run.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Seed of the run.
    pub seed: u64,
    /// Requested budget, in milliseconds.
    pub budget_ms: u64,
    /// Actual wall-clock spent, in milliseconds.
    pub elapsed_ms: u64,
    /// Rounds completed.
    pub rounds: u64,
    /// Total walks executed (original + twin replays + storms).
    pub walks: u64,
    /// In-memory snapshot/restore round-trips verified.
    pub snapshots: u64,
    /// On-disk save/load round-trips verified.
    pub file_round_trips: u64,
    /// Recoverable transients armed across all rounds.
    pub faults_injected: u64,
    /// Recovery events the transients caused (proof they fired).
    pub recovery_events: u64,
    /// Cancellation storms run.
    pub cancellation_storms: u64,
    /// Walks that correctly surfaced [`SimError::Cancelled`].
    pub cancelled_walks: u64,
    /// Sharded batches executed (clean and faulted, shard-chaos rounds).
    pub shard_batches: u64,
    /// Shard kills injected (panics + watchdog stalls).
    pub shard_kills: u64,
    /// Restart-from-snapshot recoveries the kills caused (proof the
    /// supervision machinery, not luck, healed the batches).
    pub shard_restarts: u64,
    /// Sharded batches that correctly refused to run under a cancelled
    /// ambient token with a typed `ShardFailed` error.
    pub shard_cancelled: u64,
    /// Largest shard-lane count any sharded batch ran with (one lane per
    /// NUMA node of the round's config: 2 in snoop modes, 4 under
    /// cluster-on-die).
    pub shard_lanes: u64,
    /// Per-lane health accumulated over every sharded batch (restarts,
    /// stalls, messages summed; queue high-water maxed), sorted by lane
    /// id. Feeds the repeatable `shard=` heartbeat lines that drive the
    /// `hswx top` lane panel; not part of the JSON report.
    pub shard_lane_health: Vec<ShardBeat>,
    /// Monitor/typed-error violations (must be empty).
    pub violations: Vec<SoakFailure>,
    /// Snapshot/restore divergences (must be empty).
    pub mismatches: Vec<SoakFailure>,
    /// Protocol counter totals drained (ambiently) from every simulator
    /// the soak built, sorted by name — the same registry schema campaign
    /// metrics use, so `hswx explain diff` can compare soak runs too.
    pub metrics: Vec<(String, u64)>,
}

impl SoakReport {
    /// Whether the soak passed: zero violations, zero mismatches.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.mismatches.is_empty()
    }

    /// Machine-readable JSON rendering (for CI artifacts, validated
    /// against `schemas/soak-report.schema.json`). Hand-rolled like the
    /// campaign report writer — no external dependency, stable key order.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn failures(out: &mut String, key: &str, items: &[SoakFailure], trailing_comma: bool) {
            out.push_str(&format!("  \"{key}\": [\n"));
            for (i, f) in items.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"round\": {}, \"what\": \"{}\"}}{}\n",
                    f.round,
                    esc(&f.what),
                    if i + 1 == items.len() { "" } else { "," }
                ));
            }
            out.push_str(if trailing_comma { "  ],\n" } else { "  ]\n" });
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"schema_version\": {},\n", SYSTEM_SNAPSHOT_SCHEMA));
        out.push_str(&format!("  \"budget_ms\": {},\n", self.budget_ms));
        out.push_str(&format!("  \"elapsed_ms\": {},\n", self.elapsed_ms));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str(&format!("  \"walks\": {},\n", self.walks));
        out.push_str(&format!("  \"snapshots\": {},\n", self.snapshots));
        out.push_str(&format!("  \"file_round_trips\": {},\n", self.file_round_trips));
        out.push_str(&format!("  \"faults_injected\": {},\n", self.faults_injected));
        out.push_str(&format!("  \"recovery_events\": {},\n", self.recovery_events));
        out.push_str(&format!("  \"cancellation_storms\": {},\n", self.cancellation_storms));
        out.push_str(&format!("  \"cancelled_walks\": {},\n", self.cancelled_walks));
        out.push_str(&format!("  \"shard_batches\": {},\n", self.shard_batches));
        out.push_str(&format!("  \"shard_kills\": {},\n", self.shard_kills));
        out.push_str(&format!("  \"shard_restarts\": {},\n", self.shard_restarts));
        out.push_str(&format!("  \"shard_cancelled\": {},\n", self.shard_cancelled));
        out.push_str(&format!("  \"shard_lanes\": {},\n", self.shard_lanes));
        out.push_str(&format!("  \"ok\": {},\n", self.ok()));
        out.push_str("  \"metrics\": {");
        for (i, (name, v)) in self.metrics.iter().enumerate() {
            out.push_str(&format!(
                "\"{}\": {v}{}",
                esc(name),
                if i + 1 < self.metrics.len() { ", " } else { "" }
            ));
        }
        out.push_str("},\n");
        failures(&mut out, "violations", &self.violations, true);
        failures(&mut out, "mismatches", &self.mismatches, false);
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for SoakReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos soak: {} round{} in {:.1}s (seed {:#x}, budget {:.1}s)",
            self.rounds,
            if self.rounds == 1 { "" } else { "s" },
            self.elapsed_ms as f64 / 1000.0,
            self.seed,
            self.budget_ms as f64 / 1000.0,
        )?;
        writeln!(
            f,
            "  {} walks, {} snapshot round-trips ({} through files), \
             {} transients armed ({} recovery events)",
            self.walks,
            self.snapshots,
            self.file_round_trips,
            self.faults_injected,
            self.recovery_events,
        )?;
        writeln!(
            f,
            "  {} cancellation storms ({} walks correctly refused)",
            self.cancellation_storms, self.cancelled_walks,
        )?;
        if self.shard_batches > 0 {
            writeln!(
                f,
                "  {} sharded batches across up to {} lanes, {} shard kills injected \
                 ({} restart-from-snapshot recoveries, {} batches refused under cancellation)",
                self.shard_batches,
                self.shard_lanes,
                self.shard_kills,
                self.shard_restarts,
                self.shard_cancelled,
            )?;
        }
        for v in &self.violations {
            writeln!(f, "  VIOLATION (round {}): {}", v.round, v.what)?;
        }
        for m in &self.mismatches {
            writeln!(f, "  MISMATCH (round {}): {}", m.round, m.what)?;
        }
        if self.ok() {
            writeln!(f, "  no violations, no mismatches")?;
        }
        Ok(())
    }
}

/// One pre-generated walk op: `(write?, core, line)`.
type Op = (bool, CoreId, LineAddr);

/// Per-round working state, threaded through the phases.
struct Round<'a> {
    idx: u64,
    rng: DetRng,
    report: &'a mut SoakReport,
    out_dir: Option<&'a Path>,
    threads: Option<usize>,
}

impl Round<'_> {
    fn violation(&mut self, what: String) {
        self.report.violations.push(SoakFailure { round: self.idx, what });
    }

    fn mismatch(&mut self, what: String) {
        self.report.mismatches.push(SoakFailure { round: self.idx, what });
    }

    /// Dump a failing snapshot pair for offline diffing.
    fn dump_pair(&mut self, tag: &str, original: &[u8], twin: &[u8]) {
        let Some(dir) = self.out_dir else { return };
        let base = format!("soak-{}-{tag}", self.idx);
        for (suffix, bytes) in [("orig", original), ("twin", twin)] {
            let path = dir.join(format!("{base}-{suffix}.snap"));
            let _ = hswx_engine::atomic_write(&path, bytes, false);
        }
    }

    /// A validated system config for this round: always a shipped preset
    /// base, with the soak-relevant knobs (mode, HitME sizing, prefetch)
    /// varied by the round RNG.
    fn pick_config(&mut self) -> SystemConfig {
        let mode = match self.rng.below(3) {
            0 => CoherenceMode::SourceSnoop,
            1 => CoherenceMode::HomeSnoop,
            _ => CoherenceMode::ClusterOnDie,
        };
        let mut cfg = SystemConfig::e5_8core(mode);
        cfg.hitme_entries = [8, 64, 224][self.rng.below(3) as usize];
        cfg.hitme_enabled = self.rng.chance(0.75);
        cfg.prefetch = self.rng.chance(0.5);
        cfg
    }

    /// Pre-generate the round's op sequence against `sys`'s topology.
    fn gen_ops(&mut self, sys: &System, n: u64) -> Vec<Op> {
        (0..n)
            .map(|_| {
                let node = NodeId(self.rng.below(sys.topo.n_nodes() as u64) as u8);
                let cores = sys.topo.cores_of_node(node);
                let core = cores[self.rng.below(cores.len() as u64) as usize];
                // Read mostly from the op's own node, sometimes across.
                let target = if self.rng.chance(0.7) {
                    node
                } else {
                    NodeId(self.rng.below(sys.topo.n_nodes() as u64) as u8)
                };
                let line = LineAddr(sys.topo.numa_base(target).line().0 + self.rng.below(2048));
                (self.rng.chance(0.25), core, line)
            })
            .collect()
    }

    /// Run `ops` on `sys`. Every op must succeed (transients heal
    /// transparently); a typed error is a soak violation and ends the
    /// round early.
    fn run_ops(&mut self, sys: &mut System, t: &mut SimTime, ops: &[Op]) -> bool {
        for &(write, core, line) in ops {
            let res =
                if write { sys.try_write(core, line, *t) } else { sys.try_read(core, line, *t) };
            match res {
                Ok(out) => {
                    *t = out.done;
                    self.report.walks += 1;
                }
                Err(e) => {
                    self.violation(format!(
                        "walk {} of line {:#x} by core {} failed: {e}",
                        if write { "write" } else { "read" },
                        line.0,
                        core.0,
                    ));
                    return false;
                }
            }
        }
        true
    }

    /// Arm one recoverable transient, chosen by the round RNG.
    fn arm_transient(&mut self, sys: &mut System) {
        let n = 1 + self.rng.below(3) as u32;
        match self.rng.below(3) {
            0 => sys.inject_qpi_crc(n),
            1 => sys.inject_dir_glitch(n),
            _ => sys.inject_hitme_glitch(n),
        }
        self.report.faults_injected += n as u64;
    }

    /// Poison containment: the poisoned line must refuse reads and writes
    /// with the typed error and without touching state; page retirement
    /// restores access.
    fn poison_exercise(&mut self, sys: &mut System, t: SimTime) {
        let node = NodeId(self.rng.below(sys.topo.n_nodes() as u64) as u8);
        let line = LineAddr(sys.topo.numa_base(node).line().0 + 4096 + self.rng.below(64));
        let core = sys.topo.cores_of_node(NodeId(0))[0];
        let digest_before = sys.state_digest();
        sys.inject_poison(line);
        self.report.faults_injected += 1;
        if !matches!(sys.try_read(core, line, t), Err(SimError::Poisoned { .. })) {
            self.violation(format!("poisoned line {:#x} did not refuse a read", line.0));
            return;
        }
        if !matches!(sys.try_write(core, line, t), Err(SimError::Poisoned { .. })) {
            self.violation(format!("poisoned line {:#x} did not refuse a write", line.0));
            return;
        }
        if !sys.clear_poison(line) {
            self.violation(format!("clear_poison({:#x}) found no poison", line.0));
            return;
        }
        if sys.state_digest() != digest_before {
            self.violation(format!(
                "blocked walks on poisoned line {:#x} mutated protocol state",
                line.0
            ));
            return;
        }
        if let Err(e) = sys.try_read(core, line, t) {
            self.violation(format!("retired page {:#x} still refuses reads: {e}", line.0));
        } else {
            self.report.walks += 1;
        }
    }

    /// Snapshot `sys`, restore a twin, and require bit-transparency.
    /// Returns the twin (the round continues on it — the original is the
    /// "killed" simulator).
    fn snapshot_twin(&mut self, sys: &System) -> Option<System> {
        let frame = sys.snapshot();
        let twin = match System::restore(&frame) {
            Ok(twin) => twin,
            Err(e) => {
                self.mismatch(format!("restore of a live snapshot failed: {e}"));
                return None;
            }
        };
        if twin.state_digest() != sys.state_digest() {
            let twin_frame = twin.snapshot();
            self.mismatch(format!(
                "restored digest {:#018x} != live digest {:#018x}",
                twin.state_digest(),
                sys.state_digest()
            ));
            self.dump_pair("digest", &frame, &twin_frame);
            return None;
        }
        let reframed = twin.snapshot();
        if reframed != frame {
            self.mismatch("re-encoded snapshot differs from the original frame".into());
            self.dump_pair("reencode", &frame, &reframed);
            return None;
        }
        self.report.snapshots += 1;
        Some(twin)
    }

    /// Push the frame through the filesystem and require the loaded
    /// system to match digests. Scratch file is removed on success.
    fn file_round_trip(&mut self, sys: &System, scratch_dir: &Path) {
        let path = scratch_dir.join(format!("soak-rt-{}-{}.snap", std::process::id(), self.idx));
        if let Err(e) = sys.save_snapshot(&path, false) {
            self.mismatch(format!("save_snapshot({}) failed: {e}", path.display()));
            return;
        }
        match System::load_snapshot(&path) {
            Ok(loaded) if loaded.state_digest() == sys.state_digest() => {
                self.report.file_round_trips += 1;
                let _ = std::fs::remove_file(&path);
            }
            Ok(loaded) => {
                self.mismatch(format!(
                    "loaded digest {:#018x} != live digest {:#018x} ({} kept for diffing)",
                    loaded.state_digest(),
                    sys.state_digest(),
                    path.display()
                ));
            }
            Err(e) => {
                self.mismatch(format!("load_snapshot({}) failed: {e}", path.display()));
            }
        }
    }

    /// Cancellation storm: restore a system under a cancelled ambient
    /// token; every walk must refuse with [`SimError::Cancelled`] and
    /// leave state untouched.
    fn cancellation_storm(&mut self, frame: &[u8], expected_digest: u64, ops: &[Op]) {
        let token = if self.rng.chance(0.5) {
            let t = CancelToken::new();
            t.cancel();
            t
        } else {
            // Zero budget: the deadline is already in the past. The hot
            // path only reads the clock every DEADLINE_STRIDE polls, so
            // latch the expiry eagerly — the storm models a supervisor
            // that *observed* the deadline pass, after which every walk
            // must refuse from the first poll.
            let t = CancelToken::with_deadline(Duration::ZERO);
            while !t.is_cancelled() {
                std::hint::spin_loop();
            }
            t
        };
        let storm = {
            let _guard = CancelToken::set_ambient(token);
            match System::restore(frame) {
                Ok(sys) => sys,
                Err(e) => {
                    self.mismatch(format!("restore under cancellation failed: {e}"));
                    return;
                }
            }
        };
        let mut storm = storm;
        self.report.cancellation_storms += 1;
        for &(write, core, line) in ops.iter().take(8) {
            let res = if write {
                storm.try_write(core, line, SimTime::ZERO)
            } else {
                storm.try_read(core, line, SimTime::ZERO)
            };
            match res {
                Err(SimError::Cancelled { .. }) => self.report.cancelled_walks += 1,
                Err(e) => {
                    self.violation(format!("cancelled walk raised the wrong error: {e}"));
                    return;
                }
                Ok(_) => {
                    self.violation("walk succeeded under a cancelled token".into());
                    return;
                }
            }
        }
        if storm.state_digest() != expected_digest {
            self.violation("cancelled walks mutated protocol state".into());
        }
    }
}

impl Round<'_> {
    /// A seeded batch whose accesses round-robin over every core, so
    /// each NUMA-node shard owns a healthy slice of local work.
    fn gen_batch(&mut self, sys: &System, n: u64) -> Vec<Access> {
        let n_cores: u16 = sys
            .topo
            .nodes()
            .map(|node| sys.topo.cores_of_node(node).len() as u16)
            .sum();
        (0..n)
            .map(|i| {
                let core = CoreId((i % u64::from(n_cores)) as u16);
                let target = NodeId(self.rng.below(sys.topo.n_nodes() as u64) as u8);
                let line =
                    LineAddr(sys.topo.numa_base(target).line().0 + self.rng.below(2048));
                if self.rng.chance(0.25) {
                    Access::write(core, line)
                } else {
                    Access::read(core, line)
                }
            })
            .collect()
    }

    /// Run `batch` sharded on a fresh system and require bit-identity
    /// with the sequential reference `(outcome digest, state digest)`.
    /// Returns the recovered system on success.
    fn sharded_replica(
        &mut self,
        cfg: &SystemConfig,
        batch: &[Access],
        scfg: &ShardConfig,
        want: &(hswx_haswell::BatchOutcome, u64),
        tag: &str,
    ) -> Option<System> {
        let mut sys = System::new(cfg.clone());
        match sys.run_batch_sharded(batch, scfg) {
            Ok(run) => {
                self.report.shard_batches += 1;
                self.report.walks += batch.len() as u64;
                self.report.shard_restarts += run.report.restarts;
                self.report.shard_lanes =
                    self.report.shard_lanes.max(u64::from(sys.topo.n_nodes()));
                // Fold per-lane health into the cumulative lane beats
                // (restarts/stalls/messages sum, queue high-water maxes)
                // so the heartbeat carries live per-shard state.
                for h in &run.report.shards {
                    let lane = u64::from(h.shard.0);
                    let lanes = &mut self.report.shard_lane_health;
                    let beat = match lanes.iter_mut().find(|b| b.shard == lane) {
                        Some(beat) => beat,
                        None => {
                            lanes.push(ShardBeat { shard: lane, ..ShardBeat::default() });
                            lanes.sort_by_key(|b| b.shard);
                            lanes.iter_mut().find(|b| b.shard == lane).expect("just pushed")
                        }
                    };
                    beat.restarts += u64::from(h.restarts);
                    beat.stalls += h.stalls;
                    beat.queue_hwm = beat.queue_hwm.max(h.queue_hwm);
                    beat.msgs += h.sent;
                }
                if run.outcome != want.0 || sys.state_digest() != want.1 {
                    self.mismatch(format!(
                        "{tag}: sharded batch diverged from sequential dispatch \
                         (digest {:#018x} vs {:#018x}, shard report {:?})",
                        sys.state_digest(),
                        want.1,
                        run.report,
                    ));
                    return None;
                }
                Some(sys)
            }
            Err(e) => {
                self.violation(format!("{tag}: sharded batch failed: {e}"));
                None
            }
        }
    }
}

/// One shard-chaos round: a seeded batch runs sharded at a seeded thread
/// count — clean, then with a mid-batch shard kill (panic or watchdog
/// stall) healed by restart-from-snapshot — and every recovered run must
/// be bit-identical to sequential dispatch. The recovered system then
/// proves snapshot-transparency, and a cancellation storm requires the
/// whole batch to refuse with a typed `ShardFailed` without touching
/// state.
fn run_shard_round(round: &mut Round<'_>) {
    let cfg = round.pick_config();
    let mut seq = match System::try_new(cfg.clone()) {
        Ok(sys) => sys,
        Err(e) => {
            round.violation(format!("soak preset config rejected: {e}"));
            return;
        }
    };
    let total = 96 + round.rng.below(96);
    let batch = round.gen_batch(&seq, total);
    let outcome = seq.run_batch_seq(&batch);
    round.report.walks += batch.len() as u64;
    let want = (outcome, seq.state_digest());

    let threads =
        round.threads.unwrap_or_else(|| [1usize, 2, 8][round.rng.below(3) as usize]);
    let scfg = ShardConfig::with_threads(threads);

    // Clean sharded run.
    let Some(_clean) = round.sharded_replica(&cfg, &batch, &scfg, &want, "clean") else {
        return;
    };

    // Mid-batch shard kill: panic at a seeded local access, or a
    // watchdog stall. Either way the batch must heal bit-identically.
    let n_nodes = u64::from(seq.topo.n_nodes());
    let target = round.rng.below(n_nodes) as u16;
    let mut killer = scfg.clone();
    let stall = round.rng.chance(0.4);
    if stall {
        killer.faults.stall_shard = Some(target);
        killer.watchdog = Some(Duration::from_millis(25));
    } else {
        killer.faults.panic_at = Some((target, round.rng.below(24) as u32));
    }
    round.report.shard_kills += 1;
    let Some(recovered) = round.sharded_replica(&cfg, &batch, &killer, &want, "killed") else {
        return;
    };
    if recovered.recovery.shard_restarts == 0 {
        round.violation(format!(
            "injected {} on shard {target} never fired (recovery counters empty)",
            if stall { "watchdog stall" } else { "panic" },
        ));
        return;
    }

    // The recovered system is snapshot-transparent like any other.
    let Some(twin) = round.snapshot_twin(&recovered) else { return };

    // Cancellation storm: under a cancelled ambient token the whole
    // batch must refuse with a typed ShardFailed before any dispatch.
    if round.rng.chance(0.7) {
        round.report.cancellation_storms += 1;
        let mut storm = System::new(cfg);
        let digest_before = storm.state_digest();
        let token = CancelToken::new();
        token.cancel();
        let res = {
            let _guard = CancelToken::set_ambient(token);
            storm.run_batch_sharded(&batch, &scfg)
        };
        match res {
            Err(SimError::ShardFailed { .. }) => {
                if storm.state_digest() == digest_before {
                    round.report.shard_cancelled += 1;
                } else {
                    round.violation("cancelled sharded batch mutated protocol state".into());
                }
            }
            Err(e) => round.violation(format!("cancelled batch raised the wrong error: {e}")),
            Ok(_) => round.violation("sharded batch ran under a cancelled token".into()),
        }
    }
    drop(twin);
}

/// Run one soak round. Returns early (with the failure recorded) on the
/// first violation/mismatch so a broken invariant can't cascade into a
/// wall of secondary noise.
fn run_round(round: &mut Round<'_>, scratch_dir: &Path) {
    let cfg = round.pick_config();
    let mut sys = match System::try_new(cfg) {
        Ok(sys) => sys,
        Err(e) => {
            round.violation(format!("soak preset config rejected: {e}"));
            return;
        }
    };
    sys.enable_monitor(MonitorConfig::strict());

    let total = 160 + round.rng.below(160);
    let ops = round.gen_ops(&sys, total);
    let cut = (round.rng.below(total - 8) + 4) as usize;
    let (prefix, suffix) = ops.split_at(cut);

    // Phase 1: warm walks with transients armed mid-stream.
    let mut t = SimTime::ZERO;
    let transient_at = round.rng.below(cut as u64) as usize;
    let (before, after) = prefix.split_at(transient_at);
    if !round.run_ops(&mut sys, &mut t, before) {
        return;
    }
    round.arm_transient(&mut sys);
    if round.rng.chance(0.3) {
        round.arm_transient(&mut sys);
    }
    if !round.run_ops(&mut sys, &mut t, after) {
        return;
    }

    // Phase 2: poison containment (some rounds).
    if round.rng.chance(0.4) {
        round.poison_exercise(&mut sys, t);
        if !round.report.violations.is_empty() {
            return;
        }
    }

    // Phase 3: mid-stream snapshot; kill the original, continue on the
    // twin, replaying the suffix on both and demanding identical worlds.
    // A transient may still be pending here — pending fault state is part
    // of the frame, so both replicas heal it identically.
    if round.rng.chance(0.3) {
        round.arm_transient(&mut sys);
    }
    let Some(mut twin) = round.snapshot_twin(&sys) else { return };
    let mut t_twin = t;
    let ok_orig = round.run_ops(&mut sys, &mut t, suffix);
    let ok_twin = round.run_ops(&mut twin, &mut t_twin, suffix);
    if !(ok_orig && ok_twin) {
        return;
    }
    if t != t_twin || sys.state_digest() != twin.state_digest() {
        let (a, b) = (sys.snapshot(), twin.snapshot());
        round.mismatch(format!(
            "replayed suffix diverged: t {} vs {}, digest {:#018x} vs {:#018x}",
            t.0,
            t_twin.0,
            sys.state_digest(),
            twin.state_digest()
        ));
        round.dump_pair("replay", &a, &b);
        return;
    }
    round.report.recovery_events += sys.recovery.total_events();
    drop(sys); // the "kill": only the restored twin survives

    // Phase 4: push the surviving twin through a file round-trip.
    if round.rng.chance(0.5) {
        round.file_round_trip(&twin, scratch_dir);
        if !round.report.mismatches.is_empty() {
            return;
        }
    }

    // Phase 5: cancellation storm against the twin's final frame.
    if round.rng.chance(0.6) {
        let frame = twin.snapshot();
        let digest = twin.state_digest();
        round.cancellation_storm(&frame, digest, suffix);
    }
}

/// Run a chaos soak under `cfg`'s wall-clock budget.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let mut report = SoakReport {
        seed: cfg.seed,
        budget_ms: cfg.budget.as_millis() as u64,
        elapsed_ms: 0,
        rounds: 0,
        walks: 0,
        snapshots: 0,
        file_round_trips: 0,
        faults_injected: 0,
        recovery_events: 0,
        cancellation_storms: 0,
        cancelled_walks: 0,
        shard_batches: 0,
        shard_kills: 0,
        shard_restarts: 0,
        shard_cancelled: 0,
        shard_lanes: 0,
        shard_lane_health: Vec::new(),
        violations: Vec::new(),
        mismatches: Vec::new(),
        metrics: Vec::new(),
    };
    if let Some(dir) = &cfg.out_dir {
        let _ = std::fs::create_dir_all(dir);
    }
    let scratch = cfg.out_dir.clone().unwrap_or_else(std::env::temp_dir);
    // Every simulator the soak builds drains its protocol counters here
    // on drop; the totals land in the report (and heartbeat) so soak runs
    // are diffable like campaigns.
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let _metrics = MetricsRegistry::set_ambient(std::sync::Arc::clone(&registry));
    let hb_path = cfg.out_dir.as_deref().map(|d| d.join("heartbeat.txt"));
    let start = Instant::now();
    let beat = |report: &SoakReport, status: &str| {
        let Some(path) = &hb_path else { return };
        let mut hb = Heartbeat::start("soak", 0);
        hb.status = status.to_string();
        hb.elapsed_ms = start.elapsed().as_millis() as u64;
        hb.done = report.rounds;
        hb.failed = (report.violations.len() + report.mismatches.len()) as u64;
        // Shard health for `hswx top`: one lane per NUMA node in the
        // modelled machine once any sharded batch has run.
        if report.shard_batches > 0 {
            hb.shards = report.shard_lanes;
            hb.shard_restarts = report.shard_restarts;
            hb.shard_lanes = report.shard_lane_health.clone();
        }
        hb.metrics = registry.counters_snapshot();
        let _ = hb.write(path);
    };
    beat(&report, "running");
    let mut idx = 0u64;
    // At least one round; stop once the budget is spent or something broke
    // (a soak that keeps going after a failure buries the evidence).
    loop {
        let mut round = Round {
            idx,
            rng: DetRng::new(cfg.seed).fork(idx),
            report: &mut report,
            out_dir: cfg.out_dir.as_deref(),
            threads: cfg.threads,
        };
        match cfg.scenario {
            SoakScenario::Mixed => run_round(&mut round, &scratch),
            SoakScenario::ShardChaos => run_shard_round(&mut round),
        }
        report.rounds += 1;
        idx += 1;
        let stop = !report.ok() || start.elapsed() >= cfg.budget;
        if stop {
            break;
        }
        beat(&report, "running");
    }
    report.elapsed_ms = start.elapsed().as_millis() as u64;
    report.metrics = registry.counters_snapshot();
    beat(&report, if report.ok() { "done" } else { "failed" });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_soak_is_clean_and_deterministic_in_shape() {
        let cfg = SoakConfig {
            budget: Duration::from_millis(200),
            seed: 0xDECAF,
            out_dir: None,
            scenario: SoakScenario::Mixed,
            threads: None,
        };
        let report = run_soak(&cfg);
        assert!(report.ok(), "{report}");
        assert!(report.rounds >= 1);
        assert!(report.walks > 0);
        assert!(report.snapshots >= 1, "every clean round verifies a snapshot");
        assert!(
            report.metrics.iter().any(|(n, v)| n == "sys.walks" && *v > 0),
            "soak simulators should drain counters into the report: {:?}",
            report.metrics
        );
    }

    #[test]
    fn shard_chaos_soak_recovers_killed_shards_bit_identically() {
        let cfg = SoakConfig {
            budget: Duration::from_millis(300),
            seed: 0xBADC0DE,
            out_dir: None,
            scenario: SoakScenario::ShardChaos,
            threads: None,
        };
        let report = run_soak(&cfg);
        assert!(report.ok(), "{report}");
        assert!(report.shard_batches >= 2, "clean + killed batch per round: {report}");
        assert!(report.shard_kills >= 1);
        assert!(
            report.shard_restarts >= report.shard_kills,
            "every injected kill must be healed by restart-from-snapshot: {report}"
        );
        assert!(report.snapshots >= 1, "recovered systems stay snapshot-transparent");
        // Per-lane health accumulated for the heartbeat lane panel: every
        // lane that ran carries real traffic, and injected kills land in
        // some lane's restart counter.
        assert!(!report.shard_lane_health.is_empty(), "{report}");
        assert!(report.shard_lane_health.iter().all(|b| b.msgs > 0));
        assert!(report.shard_lane_health.windows(2).all(|w| w[0].shard < w[1].shard));
        assert_eq!(
            report.shard_lane_health.iter().map(|b| b.restarts).sum::<u64>(),
            report.shard_restarts,
        );
    }

    #[test]
    fn scenario_names_round_trip() {
        for sc in [SoakScenario::Mixed, SoakScenario::ShardChaos] {
            assert_eq!(SoakScenario::from_name(sc.name()), Some(sc));
        }
        assert_eq!(SoakScenario::from_name("bogus"), None);
    }

    #[test]
    fn report_json_is_schema_shaped() {
        let report = SoakReport {
            seed: 7,
            budget_ms: 1000,
            elapsed_ms: 1042,
            rounds: 3,
            walks: 900,
            snapshots: 3,
            file_round_trips: 1,
            faults_injected: 5,
            recovery_events: 4,
            cancellation_storms: 2,
            cancelled_walks: 16,
            shard_batches: 4,
            shard_kills: 2,
            shard_restarts: 2,
            shard_cancelled: 1,
            shard_lanes: 2,
            shard_lane_health: vec![ShardBeat { shard: 0, msgs: 12, ..ShardBeat::default() }],
            violations: vec![],
            mismatches: vec![SoakFailure { round: 2, what: "digest \"diff\"".into() }],
            metrics: vec![("snoop.sent".into(), 42), ("sys.walks".into(), 900)],
        };
        let json = report.to_json();
        assert!(json.contains("\"seed\": 7"));
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("\\\"diff\\\""), "failure text is escaped: {json}");
        assert!(json.contains("\"schema_version\""));
        assert!(json.contains("\"shard_batches\": 4"));
        assert!(json.contains("\"shard_kills\": 2"));
        assert!(json.contains("\"shard_restarts\": 2"));
        assert!(json.contains("\"shard_cancelled\": 1"));
        assert!(json.contains("\"shard_lanes\": 2"));
        assert!(
            json.contains("\"metrics\": {\"snoop.sent\": 42, \"sys.walks\": 900}"),
            "{json}"
        );
    }

    #[test]
    fn zero_budget_still_runs_one_round() {
        let cfg = SoakConfig {
            budget: Duration::ZERO,
            seed: 1,
            out_dir: None,
            scenario: SoakScenario::Mixed,
            threads: None,
        };
        let report = run_soak(&cfg);
        assert_eq!(report.rounds, 1);
        assert!(report.ok(), "{report}");
    }
}
