//! Host-profiling diagnostics (ignored by default): break one sweep
//! point into its stages (System construction, buffer layout, placement,
//! pointer chase) and time raw L1/L3 walk loops. Run when chasing a
//! `perfbench` regression to see which stage moved:
//!
//! ```text
//! cargo test -p hswx-bench --release --test stage_timing -- --ignored --nocapture
//! ```

use hswx_bench::scenarios::level_of;
use hswx_engine::SimTime;
use hswx_haswell::microbench::{pointer_chase, Buffer};
use hswx_haswell::placement::Placement;
use hswx_haswell::{CoherenceMode, System, SystemConfig};
use hswx_mem::{CoreId, NodeId};
use std::time::Instant;

#[test]
#[ignore]
fn walk_micro_timing() {
    let mode = CoherenceMode::SourceSnoop;
    let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
    let base = sys.topo.numa_base(NodeId(0)).line().0;
    let mut t = SimTime::ZERO;
    // L1-hit walks: same line over and over.
    let line = hswx_mem::LineAddr(base);
    let out = sys.read(CoreId(0), line, t);
    t = out.done;
    let n = 200_000;
    let t0 = Instant::now();
    for _ in 0..n {
        let out = sys.read(CoreId(0), line, t);
        t = out.done;
    }
    eprintln!("L1-hit walk: {:.0} ns", t0.elapsed().as_nanos() as f64 / n as f64);
    // L3-hit walks: 64 lines placed in L3, read round-robin from a
    // different core each time so they never promote into L1.
    let lines: Vec<hswx_mem::LineAddr> =
        (0..64u64).map(|i| hswx_mem::LineAddr(base + 4096 + i)).collect();
    let tt = Placement::place(
        &mut sys,
        hswx_haswell::placement::PlacedState::Exclusive,
        &[CoreId(1)],
        &lines,
        hswx_haswell::placement::Level::L3,
        t,
    );
    t = tt;
    let t0 = Instant::now();
    for i in 0..n {
        let out = sys.read(CoreId(2 + (i % 4) as u16), lines[i % 64], t);
        t = out.done;
    }
    eprintln!("L3-ish walk: {:.0} ns", t0.elapsed().as_nanos() as f64 / n as f64);
}

#[test]
#[ignore]
fn stage_timing() {
    for size in [1u64 << 20, 16 << 20, 64 << 20] {
        let mode = CoherenceMode::SourceSnoop;
        let t0 = Instant::now();
        let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
        let t_sys = t0.elapsed();
        let t0 = Instant::now();
        let buf = Buffer::on_node(&sys, NodeId(0), size, 0);
        let t_buf = t0.elapsed();
        let level = level_of(mode, size);
        let t0 = Instant::now();
        let t = Placement::place(
            &mut sys,
            hswx_haswell::placement::PlacedState::Modified,
            &[CoreId(0)],
            &buf.lines,
            level,
            SimTime::ZERO,
        );
        let t_place = t0.elapsed();
        let t0 = Instant::now();
        let m = pointer_chase(&mut sys, CoreId(0), &buf.lines, t, 0xC0FFEE);
        let t_chase = t0.elapsed();
        eprintln!(
            "size {:>9} lines {:>6} level {:?}: sys {:?} buf {:?} place {:?} chase {:?} ({:.0} ns/chase-access)",
            size,
            buf.lines.len(),
            level,
            t_sys,
            t_buf,
            t_place,
            t_chase,
            t_chase.as_nanos() as f64 / m.samples as f64,
        );
    }
}
