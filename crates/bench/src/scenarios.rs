//! Reusable measurement scenarios.
//!
//! Each scenario builds a fresh system in the requested coherence mode,
//! places data with a fully specified (core, level, state, home node)
//! combination, and measures either chase latency or streaming bandwidth —
//! the exact procedure behind every number in the paper's evaluation.

use hswx_engine::SimTime;
use hswx_haswell::microbench::{
    pointer_chase, stream_read, stream_read_multi, stream_write_multi, Buffer, LoadWidth,
};
use hswx_haswell::placement::{Level, Placement, PlacedState};
use hswx_haswell::{CoherenceMode, System, SystemConfig};
use hswx_mem::{CoreId, LineAddr, NodeId};
use std::sync::OnceLock;

/// Capacity summary for one coherence mode, derived once from the static
/// config + topology. Sweep drivers classify buffer sizes thousands of
/// times; building (and dropping) a full 24-core `System` per call just to
/// read three capacity fields dominated sweep setup cost.
#[derive(Debug, Clone, Copy)]
struct GeomSummary {
    /// L1D capacity, bytes.
    l1: u64,
    /// L2 capacity, bytes.
    l2: u64,
    /// L3 capacity visible to one NUMA node, bytes (halved under COD).
    l3_node: u64,
}

fn geom_summary(mode: CoherenceMode) -> GeomSummary {
    static CACHE: OnceLock<[GeomSummary; 3]> = OnceLock::new();
    let all = CACHE.get_or_init(|| {
        [
            CoherenceMode::SourceSnoop,
            CoherenceMode::HomeSnoop,
            CoherenceMode::ClusterOnDie,
        ]
        .map(|m| {
            let cfg = SystemConfig::e5_2680_v3(m);
            let topo =
                hswx_topology::SystemTopology::new(cfg.sockets, cfg.die, cfg.mode.cod());
            let first = topo.nodes().next().expect("nodes");
            let slices = topo.slices_of_node(first).len() as u64;
            GeomSummary {
                l1: cfg.l1.size_bytes,
                l2: cfg.l2.size_bytes,
                l3_node: cfg.l3_slice.size_bytes * slices,
            }
        })
    });
    all[mode as usize]
}

/// Size presets per target level (sampled beyond [`Buffer::MAX_SIM_LINES`]).
pub fn size_for_level(level: Level) -> u64 {
    match level {
        Level::L1 => 16 * 1024,
        Level::L2 => 128 * 1024,
        Level::L3 => 1024 * 1024,
        Level::Memory => 64 * 1024 * 1024,
    }
}

/// A fully specified latency scenario.
#[derive(Debug, Clone)]
pub struct LatencyScenario {
    /// Coherence mode under test.
    pub mode: CoherenceMode,
    /// Cores that touch the data during placement, in order (last one ends
    /// up holding the Forward copy for shared placements).
    pub placers: Vec<CoreId>,
    /// Placed coherence state.
    pub state: PlacedState,
    /// Cache level the data is left in.
    pub level: Level,
    /// Home node of the buffer.
    pub home: NodeId,
    /// Core that performs the measurement chase.
    pub measurer: CoreId,
    /// Nominal buffer size (defaults per level if `None`).
    pub size: Option<u64>,
}

/// A [`LatencyScenario`] carried through its placement phase: the system
/// is built, the buffer homed, and the placement walks already executed,
/// so the next access from [`LatencyScenario::measurer`] is exactly the
/// scenario's measured access. Exists so the CLI can attach a tracer
/// *after* placement and record only measurement walks.
pub struct PreparedScenario {
    /// The placed system, ready for measurement.
    pub sys: System,
    /// Lines of the placed buffer, in chase order.
    pub lines: Vec<LineAddr>,
    /// Simulation time at which placement finished.
    pub t: SimTime,
    /// Core that performs the measurement.
    pub measurer: CoreId,
}

impl LatencyScenario {
    /// Run the scenario; returns mean ns per access.
    pub fn run(&self) -> f64 {
        self.run_detailed().0
    }

    /// Build the system and run the placement phase, stopping just short
    /// of the measurement chase.
    pub fn prepare(&self) -> PreparedScenario {
        let mut sys = System::new(SystemConfig::e5_2680_v3(self.mode));
        let size = self.size.unwrap_or_else(|| size_for_level(self.level));
        let buf = Buffer::on_node(&sys, self.home, size, 0);
        let t = Placement::place(
            &mut sys,
            self.state,
            &self.placers,
            &buf.lines,
            self.level,
            SimTime::ZERO,
        );
        PreparedScenario { sys, lines: buf.lines, t, measurer: self.measurer }
    }

    /// Run and also return the fraction of reads served from memory
    /// (the paper's REMOTE_DRAM-style diagnostic).
    pub fn run_detailed(&self) -> (f64, f64) {
        let mut p = self.prepare();
        let m = pointer_chase(&mut p.sys, p.measurer, &p.lines, p.t, 0xC0FFEE);
        let mem_frac: f64 = m
            .by_source
            .iter()
            .filter(|(s, _)| matches!(s, hswx_coherence::DataSource::Memory(_)))
            .map(|(_, &c)| c as f64)
            .sum::<f64>()
            / m.samples as f64;
        (m.ns_per_access, mem_frac)
    }
}

/// A fully specified bandwidth scenario (single core).
#[derive(Debug, Clone)]
pub struct BandwidthScenario {
    /// Coherence mode under test.
    pub mode: CoherenceMode,
    /// Placement cores (see [`LatencyScenario::placers`]).
    pub placers: Vec<CoreId>,
    /// Placed coherence state.
    pub state: PlacedState,
    /// Cache level the data is left in.
    pub level: Level,
    /// Home node of the buffer.
    pub home: NodeId,
    /// Core that performs the streaming measurement.
    pub measurer: CoreId,
    /// SIMD width of the measurement kernel.
    pub width: LoadWidth,
    /// Nominal buffer size (defaults per level if `None`).
    pub size: Option<u64>,
}

impl BandwidthScenario {
    /// Run the scenario; returns GB/s.
    pub fn run(&self) -> f64 {
        let mut sys = System::new(SystemConfig::e5_2680_v3(self.mode));
        let size = self.size.unwrap_or_else(|| size_for_level(self.level));
        let buf = Buffer::on_node(&sys, self.home, size, 0);
        let t = Placement::place(
            &mut sys,
            self.state,
            &self.placers,
            &buf.lines,
            self.level,
            SimTime::ZERO,
        );
        stream_read(&mut sys, self.measurer, &buf.lines, self.width, t).gb_s
    }
}

/// Aggregate read bandwidth: `n_cores` cores of `node` each stream their
/// own buffer homed at `home_of(i)`, placed at `level`.
pub fn aggregate_read(
    mode: CoherenceMode,
    cores: &[CoreId],
    home_of: impl Fn(usize) -> NodeId,
    level: Level,
    size_per_core: u64,
) -> f64 {
    let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
    let bufs: Vec<Buffer> = cores
        .iter()
        .enumerate()
        .map(|(i, _)| Buffer::on_node(&sys, home_of(i), size_per_core, i as u64))
        .collect();
    let mut t = SimTime::ZERO;
    if level != Level::Memory {
        for (i, b) in bufs.iter().enumerate() {
            t = Placement::modified(&mut sys, cores[i], &b.lines, level, t);
        }
    }
    let streams: Vec<(CoreId, &[LineAddr])> = cores
        .iter()
        .zip(&bufs)
        .map(|(&c, b)| (c, b.lines.as_slice()))
        .collect();
    stream_read_multi(&mut sys, &streams, LoadWidth::Avx256, t).gb_s
}

/// Aggregate write bandwidth to memory (cold buffers: every store is an
/// RFO; dirty lines stream back to DRAM through capacity evictions).
pub fn aggregate_write(
    mode: CoherenceMode,
    cores: &[CoreId],
    home_of: impl Fn(usize) -> NodeId,
    size_per_core: u64,
) -> f64 {
    let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
    // Dense buffers: steady-state write bandwidth requires the dirty
    // footprint to actually overflow the L3 into DRAM.
    let bufs: Vec<Buffer> = cores
        .iter()
        .enumerate()
        .map(|(i, _)| Buffer::on_node_dense(&sys, home_of(i), size_per_core, i as u64))
        .collect();
    let streams: Vec<(CoreId, &[LineAddr])> = cores
        .iter()
        .zip(&bufs)
        .map(|(&c, b)| (c, b.lines.as_slice()))
        .collect();
    stream_write_multi(&mut sys, &streams, LoadWidth::Avx256, SimTime::ZERO).gb_s
}

/// Latency curve over data-set sizes: placement level follows capacity
/// (the paper's size-sweep methodology — Figures 4–7).
pub fn latency_curve(
    mode: CoherenceMode,
    placers: &[CoreId],
    state: PlacedState,
    home: NodeId,
    measurer: CoreId,
    sizes: &[u64],
) -> Vec<(f64, f64)> {
    crate::parallel::parallel_map(sizes.to_vec(), |&size| {
        let level = level_of(mode, size);
        let ns = LatencyScenario {
            mode,
            placers: placers.to_vec(),
            state,
            level,
            home,
            measurer,
            size: Some(size),
        }
        .run();
        (size as f64, ns)
    })
}

/// Bandwidth curve over data-set sizes (Figures 8/9).
pub fn bandwidth_curve(
    mode: CoherenceMode,
    placers: &[CoreId],
    state: PlacedState,
    home: NodeId,
    measurer: CoreId,
    width: LoadWidth,
    sizes: &[u64],
) -> Vec<(f64, f64)> {
    crate::parallel::parallel_map(sizes.to_vec(), |&size| {
        let level = level_of(mode, size);
        let gbs = BandwidthScenario {
            mode,
            placers: placers.to_vec(),
            state,
            level,
            home,
            measurer,
            width,
            size: Some(size),
        }
        .run();
        (size as f64, gbs)
    })
}

/// The cache level a data set of `size` bytes lands in, per mode.
///
/// Same thresholds as [`Placement::level_for_size`], answered from the
/// cached [`GeomSummary`] instead of a throwaway `System` (asserted
/// equivalent in this module's tests).
pub fn level_of(mode: CoherenceMode, size: u64) -> Level {
    let g = geom_summary(mode);
    if size <= g.l1 {
        Level::L1
    } else if size <= g.l2 {
        Level::L2
    } else if size <= g.l3_node {
        Level::L3
    } else {
        Level::Memory
    }
}

/// Convenience: first core of a node in the given mode.
pub fn first_core_of(mode: CoherenceMode, node: u8) -> CoreId {
    let sys_cfg = SystemConfig::e5_2680_v3(mode);
    let topo =
        hswx_topology::SystemTopology::new(sys_cfg.sockets, sys_cfg.die, sys_cfg.mode.cod());
    topo.cores_of_node(NodeId(node))[0]
}

/// Convenience: n-th core of a node.
pub fn nth_core_of(mode: CoherenceMode, node: u8, n: usize) -> CoreId {
    let sys_cfg = SystemConfig::e5_2680_v3(mode);
    let topo =
        hswx_topology::SystemTopology::new(sys_cfg.sockets, sys_cfg.die, sys_cfg.mode.cod());
    topo.cores_of_node(NodeId(node))[n]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cached-summary classifier must agree with the `System`-backed
    /// oracle at every sweep size, including the capacity boundaries.
    #[test]
    fn level_of_matches_system_backed_oracle() {
        for mode in [
            CoherenceMode::SourceSnoop,
            CoherenceMode::HomeSnoop,
            CoherenceMode::ClusterOnDie,
        ] {
            let sys = System::new(SystemConfig::e5_2680_v3(mode));
            let mut sizes = hswx_haswell::report::sweep_sizes();
            for b in [32 * 1024u64, 256 * 1024, 2560 * 1024, 10 << 20, 20 << 20] {
                sizes.extend_from_slice(&[b - 1, b, b + 1]);
            }
            for size in sizes {
                assert_eq!(
                    level_of(mode, size),
                    Placement::level_for_size(&sys, size),
                    "mode {mode:?}, size {size}"
                );
            }
        }
    }
}
