//! Parallel sweep driver.
//!
//! Every point of a figure sweep is an independent simulation (its own
//! `System`), so sweeps parallelize perfectly across host threads. This
//! driver fans a list of jobs out over scoped threads, claiming work
//! through a single lock-free `AtomicUsize` fetch-add queue; each thread
//! accumulates its `(index, value)` results locally and merges them into
//! the shared output once, when it runs out of work. Per-job cost is one
//! atomic increment — no mutex is touched while jobs are running, so the
//! driver scales to many-core hosts even for sub-millisecond jobs.
//!
//! Each job runs under [`std::panic::catch_unwind`], so one diverging
//! point (a protocol bug, a pathological parameter) no longer aborts
//! the thousands of sibling points of a sweep: [`parallel_try_map`]
//! completes the rest and reports exactly which points failed and why.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sweep point whose job panicked.
#[derive(Debug, Clone)]
pub struct FailedJob {
    /// Index into the input job list.
    pub index: usize,
    /// Rendered panic payload (`&str`/`String` payloads verbatim).
    pub panic: String,
}

impl std::fmt::Display for FailedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {}: {}", self.index, self.panic)
    }
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Map `jobs` to values in parallel, preserving order and isolating
/// panics: a panicking job is reported in the second return value while
/// every other job still completes.
///
/// `f` must be pure per job (each job builds its own simulator), which
/// every scenario in this crate satisfies.
pub fn parallel_try_map<J, R, F>(jobs: Vec<J>, f: F) -> (Vec<Option<R>>, Vec<FailedJob>)
where
    J: Send + Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let n = jobs.len();
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let failures: Mutex<Vec<FailedJob>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    // Carry the caller's ambient cancellation token, metrics registry,
    // and telemetry hub into the workers, so a supervisor watchdog
    // installed around this sweep reaches the simulators the jobs
    // construct on pool threads, their counters drain into the caller's
    // registry, and their time-series samples land in the caller's hub
    // (the hub's merge is order-independent, so concurrent drains from
    // many workers still produce a deterministic series).
    let ambient = hswx_engine::CancelToken::ambient();
    let metrics = hswx_engine::MetricsRegistry::ambient();
    let telemetry = hswx_engine::TelemetryHub::ambient();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let _cancel_scope = ambient.clone().map(hswx_engine::CancelToken::set_ambient);
                let _metrics_scope =
                    metrics.clone().map(hswx_engine::MetricsRegistry::set_ambient);
                let _telemetry_scope =
                    telemetry.clone().map(hswx_engine::TelemetryHub::set_ambient);
                // Claim jobs with a bare fetch-add; buffer outcomes
                // locally and take the shared locks exactly once.
                let mut local: Vec<(usize, R)> = Vec::new();
                let mut local_failures: Vec<FailedJob> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| f(&jobs[i]))) {
                        Ok(r) => local.push((i, r)),
                        Err(payload) => local_failures
                            .push(FailedJob { index: i, panic: panic_message(payload) }),
                    }
                }
                if !local.is_empty() {
                    let mut out = results.lock().unwrap_or_else(|e| e.into_inner());
                    for (i, r) in local {
                        out[i] = Some(r);
                    }
                }
                if !local_failures.is_empty() {
                    failures
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .append(&mut local_failures);
                }
            });
        }
    });

    let mut failures = failures.into_inner().unwrap_or_else(|e| e.into_inner());
    failures.sort_by_key(|fj| fj.index);
    let results = results.into_inner().unwrap_or_else(|e| e.into_inner());
    (results, failures)
}

/// Map `jobs` to values in parallel, preserving order.
///
/// Thin wrapper over [`parallel_try_map`]: all sibling jobs run to
/// completion even when some panic, then this reports every failed
/// index at once (rather than aborting the whole sweep on the first).
pub fn parallel_map<J, R, F>(jobs: Vec<J>, f: F) -> Vec<R>
where
    J: Send + Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let (results, failures) = parallel_try_map(jobs, f);
    if !failures.is_empty() {
        let detail: Vec<String> = failures.iter().map(|fj| fj.to_string()).collect();
        panic!(
            "{} of {} sweep jobs failed: [{}]",
            failures.len(),
            results.len(),
            detail.join("; "),
        );
    }
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_completeness() {
        let jobs: Vec<u64> = (0..100).collect();
        let out = parallel_map(jobs, |&j| j * j);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn works_with_empty_and_single() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |&j| j);
        assert!(out.is_empty());
        let out = parallel_map(vec![7u32], |&j| j + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn runs_simulations_concurrently() {
        use hswx_haswell::{CoherenceMode, System, SystemConfig};
        use hswx_mem::{CoreId, LineAddr};
        let modes = vec![
            CoherenceMode::SourceSnoop,
            CoherenceMode::HomeSnoop,
            CoherenceMode::ClusterOnDie,
        ];
        let lats = parallel_map(modes, |&m| {
            let mut sys = System::new(SystemConfig::e5_2680_v3(m));
            sys.read(CoreId(0), LineAddr(0), hswx_engine::SimTime::ZERO)
                .latency_ns(hswx_engine::SimTime::ZERO)
        });
        assert_eq!(lats.len(), 3);
        assert!(lats.iter().all(|&l| l > 50.0));
    }

    #[test]
    fn ambient_telemetry_hub_reaches_pool_threads() {
        use hswx_engine::{SimTime, TelemetryConfig, TelemetryHub};
        use std::sync::Arc;
        let hub = Arc::new(TelemetryHub::new(TelemetryConfig::default()));
        let _scope = TelemetryHub::set_ambient(Arc::clone(&hub));
        let jobs: Vec<u64> = (0..32).collect();
        parallel_map(jobs, |&j| {
            // Each worker samples into whatever hub it sees ambiently —
            // exactly what the simulator's telemetry taps do.
            let hub = TelemetryHub::ambient().expect("hub propagated to worker");
            let mut s = hub.sampler();
            s.record("test.jobs", SimTime::ZERO, 1);
            s.record("test.value", SimTime::ZERO, j);
            hub.absorb(s);
        });
        let merged = hub.collect();
        assert_eq!(merged.channel_total("test.jobs"), 32);
        assert_eq!(merged.channel_total("test.value"), (0..32).sum::<u64>());
    }

    #[test]
    fn panicking_job_does_not_abort_siblings() {
        let jobs: Vec<u32> = (0..64).collect();
        let (results, failures) = parallel_try_map(jobs, |&j| {
            if j % 10 == 3 {
                panic!("deliberate failure at {j}");
            }
            j * 2
        });
        assert_eq!(failures.len(), 7); // 3, 13, ..., 63
        assert!(failures.iter().all(|fj| fj.index % 10 == 3));
        assert!(failures[0].panic.contains("deliberate failure at 3"));
        for (i, r) in results.iter().enumerate() {
            if i % 10 == 3 {
                assert!(r.is_none());
            } else {
                assert_eq!(*r, Some(i as u32 * 2));
            }
        }
    }

    #[test]
    fn parallel_map_reports_every_failed_index() {
        let jobs: Vec<u32> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(jobs, |&j| {
                if j == 4 || j == 11 {
                    panic!("bad point {j}");
                }
                j
            })
        });
        let msg = match caught {
            Ok(_) => panic!("expected parallel_map to report failures"),
            Err(p) => *p.downcast::<String>().expect("string panic message"),
        };
        assert!(msg.contains("2 of 16 sweep jobs failed"), "{msg}");
        assert!(msg.contains("job 4") && msg.contains("job 11"), "{msg}");
    }
}
