//! Parallel sweep driver.
//!
//! Every point of a figure sweep is an independent simulation (its own
//! `System`), so sweeps parallelize perfectly across host threads. This
//! driver fans a list of jobs out over `crossbeam` scoped threads and
//! collects `(index, value)` results through a `parking_lot` mutex,
//! preserving input order. Figures that took minutes single-threaded
//! regenerate in seconds on a many-core host.

use parking_lot::Mutex;

/// Map `jobs` to values in parallel, preserving order.
///
/// `f` must be pure per job (each job builds its own simulator), which
/// every scenario in this crate satisfies.
pub fn parallel_map<J, R, F>(jobs: Vec<J>, f: F) -> Vec<R>
where
    J: Send + Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let n = jobs.len();
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let next: Mutex<usize> = Mutex::new(0);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = {
                    let mut guard = next.lock();
                    let i = *guard;
                    if i >= n {
                        return;
                    }
                    *guard += 1;
                    i
                };
                let r = f(&jobs[i]);
                results.lock()[i] = Some(r);
            });
        }
    })
    .expect("sweep worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_completeness() {
        let jobs: Vec<u64> = (0..100).collect();
        let out = parallel_map(jobs, |&j| j * j);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn works_with_empty_and_single() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |&j| j);
        assert!(out.is_empty());
        let out = parallel_map(vec![7u32], |&j| j + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn runs_simulations_concurrently() {
        use hswx_haswell::{CoherenceMode, System, SystemConfig};
        use hswx_mem::{CoreId, LineAddr};
        let modes = vec![
            CoherenceMode::SourceSnoop,
            CoherenceMode::HomeSnoop,
            CoherenceMode::ClusterOnDie,
        ];
        let lats = parallel_map(modes, |&m| {
            let mut sys = System::new(SystemConfig::e5_2680_v3(m));
            sys.read(CoreId(0), LineAddr(0), hswx_engine::SimTime::ZERO)
                .latency_ns(hswx_engine::SimTime::ZERO)
        });
        assert_eq!(lats.len(), 3);
        assert!(lats.iter().all(|&l| l > 50.0));
    }
}
