//! Tracked performance baseline — the measurement core of `hswx perfbench`.
//!
//! Measures *host* throughput of the simulator on a fixed set of walk
//! kernels (simulated accesses per host second) plus the wall time of a
//! full figure regeneration, and serialises the result as
//! `BENCH_perf.json`. The committed baseline lets CI (and humans) catch
//! hot-path regressions: `compare` fails when any kernel's walks/sec
//! drops more than the tolerance below the baseline.
//!
//! The JSON is written and parsed by hand (the vendored serde stand-in
//! does not serialise); the parser only understands the writer's own
//! output, which is all it ever needs to read.

use crate::scenarios::level_of;
use hswx_engine::SimTime;
use hswx_haswell::microbench::Buffer;
use hswx_haswell::placement::{PlacedState, Placement};
use hswx_haswell::report::sweep_sizes;
use hswx_haswell::{Access, CoherenceMode, Issue, ShardConfig, System, SystemConfig};
use hswx_mem::{CoreId, LineAddr, NodeId};
use std::time::Instant;

/// One walk kernel's measurement.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Stable kernel name (the comparison key).
    pub name: &'static str,
    /// Simulated walks executed.
    pub walks: u64,
    /// Host wall time for the measured loop.
    pub wall_s: f64,
    /// Walks per host second (the regression metric).
    pub walks_per_sec: f64,
}

/// Wall time of a figure regeneration (informational; not compared).
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Figure name.
    pub name: &'static str,
    /// Sweep points computed.
    pub points: usize,
    /// Host wall time.
    pub wall_s: f64,
}

/// A full `perfbench` run.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// True for `--quick` runs (fewer iterations, no figure timing).
    pub quick: bool,
    /// Walk-kernel measurements.
    pub kernels: Vec<KernelResult>,
    /// Figure wall times (empty in quick mode).
    pub figures: Vec<FigureResult>,
}

fn kernel(name: &'static str, walks: u64, f: impl FnOnce() -> u64) -> KernelResult {
    let t0 = Instant::now();
    let done = f();
    let wall_s = t0.elapsed().as_secs_f64();
    debug_assert_eq!(done, walks);
    KernelResult { name, walks, wall_s, walks_per_sec: walks as f64 / wall_s }
}

/// Repeated reads of one line resident in the measuring core's L1.
fn l1_hit_walk(iters: u64) -> KernelResult {
    let mode = CoherenceMode::SourceSnoop;
    let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
    let line = LineAddr(sys.topo.numa_base(NodeId(0)).line().0);
    let mut t = sys.read(CoreId(0), line, SimTime::ZERO).done;
    // Untimed warm-up so icache/branch-predictor state doesn't skew the
    // first measured iterations (kernels are compared across runs).
    for _ in 0..iters / 4 {
        t = sys.read(CoreId(0), line, t).done;
    }
    kernel("l1_hit_walk", iters, || {
        for _ in 0..iters {
            t = sys.read(CoreId(0), line, t).done;
        }
        iters
    })
}

/// Round-robin reads of 64 L3-resident lines from rotating cores, so the
/// walk always crosses the ring to the caching agent.
fn l3_walk(iters: u64) -> KernelResult {
    let mode = CoherenceMode::SourceSnoop;
    let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
    let base = sys.topo.numa_base(NodeId(0)).line().0;
    let lines: Vec<LineAddr> = (0..64u64).map(|i| LineAddr(base + i)).collect();
    let mut t = Placement::place(
        &mut sys,
        PlacedState::Exclusive,
        &[CoreId(1)],
        &lines,
        hswx_haswell::placement::Level::L3,
        SimTime::ZERO,
    );
    for i in 0..iters / 4 {
        let core = CoreId(2 + (i % 4) as u16);
        t = sys.read(core, lines[(i % 64) as usize], t).done;
    }
    kernel("l3_walk", iters, || {
        for i in 0..iters {
            let core = CoreId(2 + (i % 4) as u16);
            t = sys.read(core, lines[(i % 64) as usize], t).done;
        }
        iters
    })
}

/// Cold reads of always-fresh lines: every walk misses the whole
/// hierarchy and goes to home memory (directory insert included).
fn mem_walk(iters: u64) -> KernelResult {
    let mode = CoherenceMode::SourceSnoop;
    let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
    let base = sys.topo.numa_base(NodeId(0)).line().0;
    let mut t = SimTime::ZERO;
    let warm = iters / 4;
    for i in 0..warm {
        t = sys.read(CoreId(0), LineAddr(base + i), t).done;
    }
    kernel("mem_walk", iters, || {
        for i in 0..iters {
            t = sys.read(CoreId(0), LineAddr(base + warm + i), t).done;
        }
        iters
    })
}

/// `mem_walk`'s access stream dispatched through the batch engine
/// (`System::run_batch`): SoA staging + lookahead prefetch over the same
/// always-fresh cold-read chain. `mem_walk` stays on the sequential
/// entry points as the differential reference; the gap between the two
/// kernels is the batch engine's dividend and is tracked in
/// `BENCH_history.jsonl` alongside both.
fn mem_walk_batch(iters: u64) -> KernelResult {
    let mode = CoherenceMode::SourceSnoop;
    let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
    let base = sys.topo.numa_base(NodeId(0)).line().0;
    let warm = iters / 4;
    let accs: Vec<Access> = (0..warm + iters)
        .map(|i| Access::read(CoreId(0), LineAddr(base + i)))
        .collect();
    let (warm_accs, rest) = accs.split_at(warm as usize);
    let mut t = sys.run_batch(warm_accs).done;
    // Submitted in BATCH_CHUNK chunks, each re-anchored at the previous
    // chunk's completion — the recommended shape for long chains (one
    // monolithic submission would drag iters × 72 B of reply buffers
    // through the host cache and give back the prefetcher's win).
    let mut timed = rest.to_vec();
    kernel("mem_walk_batch", iters, || {
        let mut done = 0u64;
        for chunk in timed.chunks_mut(hswx_haswell::BATCH_CHUNK) {
            chunk[0].issue = Issue::At(t);
            let out = sys.run_batch(chunk);
            t = out.done;
            done += out.replies.len() as u64;
        }
        done
    })
}

/// Cold reads dispatched through the supervised sharded runtime at a
/// fixed worker-thread count, with the access stream round-robined over
/// every core so each NUMA-node shard owns real work. Tracked at 1, 2,
/// and 8 threads: `shard1` prices the supervision machinery itself
/// against `mem_walk_batch` (same dispatch loop, plus shard planning),
/// and the 2/8-thread points track the parallel planning dividend. All
/// three produce bit-identical simulation results — only the host
/// throughput may differ.
fn mem_walk_shard(name: &'static str, threads: usize, iters: u64) -> KernelResult {
    let mode = CoherenceMode::SourceSnoop;
    let cfg = SystemConfig::e5_2680_v3(mode);
    let n_cores = u64::from(cfg.n_cores());
    let mut sys = System::new(cfg);
    let base = sys.topo.numa_base(NodeId(0)).line().0;
    let warm = iters / 4;
    let accs: Vec<Access> = (0..warm + iters)
        .map(|i| Access::read(CoreId((i % n_cores) as u16), LineAddr(base + i)))
        .collect();
    let (warm_accs, rest) = accs.split_at(warm as usize);
    let scfg = ShardConfig::with_threads(threads);
    let mut t = sys
        .run_batch_sharded(warm_accs, &scfg)
        .expect("clean sharded warmup")
        .outcome
        .done;
    let mut timed = rest.to_vec();
    kernel(name, iters, || {
        let mut done = 0u64;
        for chunk in timed.chunks_mut(hswx_haswell::BATCH_CHUNK) {
            chunk[0].issue = Issue::At(t);
            let out = sys.run_batch_sharded(chunk, &scfg).expect("clean sharded run");
            t = out.outcome.done;
            done += out.outcome.replies.len() as u64;
        }
        done
    })
}

/// Placement throughput: write + demote a Modified working set into L3
/// (the setup phase that dominates figure regeneration).
fn placement_l3(lines_n: u64) -> KernelResult {
    let mode = CoherenceMode::SourceSnoop;
    let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
    let buf = Buffer::on_node(&sys, NodeId(0), lines_n * 64, 0);
    let lines = buf.lines;
    let n = lines.len() as u64;
    // Warm the code path on a separate small buffer (slot 1) so the
    // measured placement still runs against cold lines.
    let warm = Buffer::on_node(&sys, NodeId(0), 2048 * 64, 1);
    Placement::place(
        &mut sys,
        PlacedState::Modified,
        &[CoreId(0)],
        &warm.lines,
        hswx_haswell::placement::Level::L3,
        SimTime::ZERO,
    );
    kernel("placement_l3", n, || {
        Placement::place(
            &mut sys,
            PlacedState::Modified,
            &[CoreId(0)],
            &lines,
            hswx_haswell::placement::Level::L3,
            SimTime::ZERO,
        );
        n
    })
}

/// `placement_l3`'s workload built as one explicit `Access` batch (the
/// write chain in a single `run_batch` call, then the prefetched demote
/// loop). `Placement::place` itself routes through the batch engine, so
/// this should track `placement_l3` closely — a growing gap between the
/// two flags a regression in the explicit batch-construction path.
fn placement_l3_batch(lines_n: u64) -> KernelResult {
    let mode = CoherenceMode::SourceSnoop;
    let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
    let buf = Buffer::on_node(&sys, NodeId(0), lines_n * 64, 0);
    let lines = buf.lines;
    let n = lines.len() as u64;
    let warm = Buffer::on_node(&sys, NodeId(0), 2048 * 64, 1);
    Placement::place(
        &mut sys,
        PlacedState::Modified,
        &[CoreId(0)],
        &warm.lines,
        hswx_haswell::placement::Level::L3,
        SimTime::ZERO,
    );
    let mut accs: Vec<Access> =
        lines.iter().map(|&l| Access::write(CoreId(0), l)).collect();
    kernel("placement_l3_batch", n, || {
        let mut t = SimTime::ZERO;
        let mut done = 0u64;
        for chunk in accs.chunks_mut(hswx_haswell::BATCH_CHUNK) {
            chunk[0].issue = Issue::At(t);
            let out = sys.run_batch(chunk);
            t = out.done;
            done += out.replies.len() as u64;
        }
        for &l in &lines {
            sys.demote_to_l3(CoreId(0), l, t);
        }
        done
    })
}

/// Wall time of the full Figure 4 computation (8 series × the paper's
/// size sweep), without file output.
fn fig4_wall() -> FigureResult {
    use crate::scenarios::latency_curve;
    use PlacedState::{Exclusive, Modified, Shared};
    let mode = CoherenceMode::SourceSnoop;
    let sizes = sweep_sizes();
    let (c0, c1, c2, c12, c13) =
        (CoreId(0), CoreId(1), CoreId(2), CoreId(12), CoreId(13));
    let series: [(&[CoreId], PlacedState, NodeId); 8] = [
        (&[c0], Modified, NodeId(0)),
        (&[c0], Exclusive, NodeId(0)),
        (&[c1], Modified, NodeId(0)),
        (&[c1], Exclusive, NodeId(0)),
        (&[c1, c2], Shared, NodeId(0)),
        (&[c12], Modified, NodeId(1)),
        (&[c12], Exclusive, NodeId(1)),
        (&[c12, c13], Shared, NodeId(1)),
    ];
    let t0 = Instant::now();
    let mut points = 0usize;
    for (placers, state, home) in series {
        points += latency_curve(mode, placers, state, home, c0, &sizes).len();
    }
    FigureResult { name: "fig4", points, wall_s: t0.elapsed().as_secs_f64() }
}

/// One-off sharded-walk measurement at an arbitrary validated thread
/// count — the `hswx perfbench --threads N` hook. Reported alongside
/// the suite but never gated: the committed baseline only tracks the
/// fixed 1/2/8-thread kernels.
pub fn shard_probe(threads: usize, iters: u64) -> KernelResult {
    mem_walk_shard("mem_walk_shard_probe", threads, iters)
}

/// Run one named kernel with `walks` iterations and return its walks/sec
/// (hook for the `walks` criterion bench; panics on an unknown name).
pub fn run_kernel_for_bench(name: &str, walks: u64) -> f64 {
    let k = match name {
        "l1_hit_walk" => l1_hit_walk(walks),
        "l3_walk" => l3_walk(walks),
        "mem_walk" => mem_walk(walks),
        "mem_walk_batch" => mem_walk_batch(walks),
        "mem_walk_shard1" => mem_walk_shard("mem_walk_shard1", 1, walks),
        "mem_walk_shard2" => mem_walk_shard("mem_walk_shard2", 2, walks),
        "mem_walk_shard8" => mem_walk_shard("mem_walk_shard8", 8, walks),
        "placement_l3" => placement_l3(walks),
        "placement_l3_batch" => placement_l3_batch(walks),
        other => panic!("unknown perf kernel {other}"),
    };
    k.walks_per_sec
}

/// Run the kernel suite (and, unless `quick`, the figure timing).
///
/// Quick mode runs the *same* kernel measurement at identical iteration
/// counts (keeping walks/sec comparable with the committed full-mode
/// baseline); it skips only the multi-second figure regeneration.
///
/// Each kernel keeps the best of `REPS` reps, and the reps are
/// *interleaved* — round 1 runs every kernel once, then round 2, and so
/// on. Throughput gates want the *capability* of the code, not the mood
/// of the host scheduler: single 40 ms samples on a busy single-core box
/// swing 2×, and back-to-back reps all fit inside one multi-second CPU
/// steal window, so both would make the CI gate flaky. Interleaving
/// spreads each kernel's reps across the full suite duration, so a stall
/// must outlast the whole suite to sink any one kernel.
pub fn run(quick: bool) -> PerfReport {
    // Touch the geometry cache so first-use costs don't bias the kernels.
    let _ = level_of(CoherenceMode::SourceSnoop, 1 << 20);
    const REPS: u32 = 5;
    let round = || {
        [
            l1_hit_walk(2_000_000),
            l3_walk(1_000_000),
            mem_walk(400_000),
            mem_walk_batch(400_000),
            mem_walk_shard("mem_walk_shard1", 1, 200_000),
            mem_walk_shard("mem_walk_shard2", 2, 200_000),
            mem_walk_shard("mem_walk_shard8", 8, 200_000),
            placement_l3(32 * 1024),
            placement_l3_batch(32 * 1024),
        ]
    };
    let mut kernels = Vec::from(round());
    for _ in 1..REPS {
        for (best, rep) in kernels.iter_mut().zip(round()) {
            if rep.walks_per_sec > best.walks_per_sec {
                *best = rep;
            }
        }
    }
    let figures = if quick { Vec::new() } else { vec![fig4_wall()] };
    PerfReport { quick, kernels, figures }
}

impl PerfReport {
    /// Serialise as the committed `BENCH_perf.json` format.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": 3,\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", if self.quick { "quick" } else { "full" }));
        s.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"walks\": {}, \"wall_s\": {:.4}, \"walks_per_sec\": {:.1}}}{}\n",
                k.name,
                k.walks,
                k.wall_s,
                k.walks_per_sec,
                if i + 1 < self.kernels.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"figures\": [\n");
        for (i, f) in self.figures.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"points\": {}, \"wall_s\": {:.3}}}{}\n",
                f.name,
                f.points,
                f.wall_s,
                if i + 1 < self.figures.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Human-readable summary table.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<16} {:>10} {:>10} {:>14}\n",
            "kernel", "walks", "wall s", "walks/sec"
        ));
        for k in &self.kernels {
            s.push_str(&format!(
                "{:<16} {:>10} {:>10.3} {:>14.0}\n",
                k.name, k.walks, k.wall_s, k.walks_per_sec
            ));
        }
        for f in &self.figures {
            s.push_str(&format!(
                "{:<16} {:>10} {:>10.3} {:>14}\n",
                f.name,
                format!("{} pts", f.points),
                f.wall_s,
                "-"
            ));
        }
        s
    }
}

/// Convert days since the Unix epoch to a civil `(year, month, day)`
/// (Gregorian; the standard era-based algorithm, exact for all dates).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + i64::from(m <= 2), m, d)
}

/// UTC calendar date (`YYYY-MM-DD`) of a Unix timestamp in seconds.
pub fn utc_date(epoch_secs: u64) -> String {
    let (y, m, d) = civil_from_days((epoch_secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// The commit this run measured: `GITHUB_SHA` when CI exports it,
/// `git rev-parse HEAD` otherwise, `"unknown"` outside a checkout.
pub fn current_git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.trim().is_empty() {
            return sha.trim().to_string();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One `BENCH_history.jsonl` line: a dated, git-sha-stamped snapshot of
/// the run's kernel throughputs (and figure wall times, when measured).
/// Appending one of these per `hswx perfbench` run turns the point-in-time
/// regression gate into a queryable performance history.
pub fn history_line(report: &PerfReport, epoch_secs: u64, git_sha: &str) -> String {
    let mut s = format!(
        "{{\"date\": \"{}\", \"git_sha\": \"{}\", \"mode\": \"{}\", \"kernels\": {{",
        utc_date(epoch_secs),
        git_sha,
        if report.quick { "quick" } else { "full" },
    );
    for (i, k) in report.kernels.iter().enumerate() {
        s.push_str(&format!(
            "\"{}\": {:.1}{}",
            k.name,
            k.walks_per_sec,
            if i + 1 < report.kernels.len() { ", " } else { "" }
        ));
    }
    s.push_str("}, \"figures\": {");
    for (i, f) in report.figures.iter().enumerate() {
        s.push_str(&format!(
            "\"{}\": {:.3}{}",
            f.name,
            f.wall_s,
            if i + 1 < report.figures.len() { ", " } else { "" }
        ));
    }
    s.push_str("}}\n");
    s
}

/// Append a history line to `path`, creating the file when missing.
pub fn append_history(
    path: &std::path::Path,
    report: &PerfReport,
    epoch_secs: u64,
    git_sha: &str,
) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    f.write_all(history_line(report, epoch_secs, git_sha).as_bytes())
}

/// Extract `(name, walks_per_sec)` pairs from a `BENCH_perf.json` written
/// by [`PerfReport::to_json`]. Returns an empty list on malformed input.
pub fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in text.split("{\"name\": \"").skip(1) {
        let Some(name_end) = chunk.find('"') else { continue };
        let name = &chunk[..name_end];
        let Some(pos) = chunk.find("\"walks_per_sec\": ") else { continue };
        let rest = &chunk[pos + "\"walks_per_sec\": ".len()..];
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name.to_string(), v));
        }
    }
    out
}

/// Parse `BENCH_history.jsonl` into per-entry kernel throughput lists,
/// file order (oldest first). Malformed or kernel-free lines are skipped:
/// the history is append-only across format versions, so one bad line
/// must never poison the trend check.
pub fn parse_history(text: &str) -> Vec<Vec<(String, f64)>> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let Some(pos) = line.find("\"kernels\": {") else { continue };
        let rest = &line[pos + "\"kernels\": {".len()..];
        let Some(end) = rest.find('}') else { continue };
        let mut kernels = Vec::new();
        for pair in rest[..end].split(',') {
            let Some((name, value)) = pair.split_once(':') else { continue };
            let name = name.trim().trim_matches('"');
            if name.is_empty() {
                continue;
            }
            if let Ok(v) = value.trim().parse::<f64>() {
                kernels.push((name.to_string(), v));
            }
        }
        if !kernels.is_empty() {
            entries.push(kernels);
        }
    }
    entries
}

/// Prior entries a kernel needs before the trailing-median trend gate
/// engages (a median of one or two runs is host-scheduler noise).
pub const HISTORY_MIN_PRIOR: usize = 3;

/// Gate the newest `BENCH_history.jsonl` entry against each kernel's
/// trailing median over all prior entries: `Err` lines for every kernel
/// whose latest walks/sec fell more than `tolerance` (fraction) below
/// its median. Kernels with fewer than [`HISTORY_MIN_PRIOR`] prior
/// entries are reported but not gated, so freshly added kernels can
/// accumulate history first. An empty history is an error — the check
/// only makes sense after `hswx perfbench` has appended at least once.
pub fn check_history(text: &str, tolerance: f64) -> Result<Vec<String>, Vec<String>> {
    let entries = parse_history(text);
    let Some((latest, prior)) = entries.split_last() else {
        return Err(vec!["no history entries found (run `hswx perfbench` first)".into()]);
    };
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for (name, latest_v) in latest {
        let mut series: Vec<f64> = prior
            .iter()
            .filter_map(|e| e.iter().find(|(n, _)| n == name).map(|(_, v)| *v))
            .collect();
        if series.len() < HISTORY_MIN_PRIOR {
            ok.push(format!(
                "{name:<20} {latest_v:>14.0} walks/sec ({} prior entr{}, needs {} — not gated)",
                series.len(),
                if series.len() == 1 { "y" } else { "ies" },
                HISTORY_MIN_PRIOR,
            ));
            continue;
        }
        series.sort_by(f64::total_cmp);
        let mid = series.len() / 2;
        let median = if series.len() % 2 == 1 {
            series[mid]
        } else {
            (series[mid - 1] + series[mid]) / 2.0
        };
        let line = format!(
            "{name:<20} {latest_v:>14.0} walks/sec vs trailing median {median:>14.0} ({:+.1}%)",
            (latest_v / median - 1.0) * 100.0
        );
        if *latest_v < median * (1.0 - tolerance) {
            bad.push(line);
        } else {
            ok.push(line);
        }
    }
    if bad.is_empty() {
        Ok(ok)
    } else {
        Err(bad)
    }
}

/// Compare a run against a parsed baseline. Returns `Err` lines for every
/// kernel whose walks/sec fell more than `tolerance` (fraction, e.g. 0.30)
/// below the baseline value; kernels absent from the baseline are skipped.
pub fn compare(
    report: &PerfReport,
    baseline: &[(String, f64)],
    tolerance: f64,
) -> Result<Vec<String>, Vec<String>> {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for k in &report.kernels {
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == k.name) else {
            ok.push(format!("{:<16} {:>14.0} walks/sec (no baseline entry)", k.name, k.walks_per_sec));
            continue;
        };
        let ratio = k.walks_per_sec / base;
        let line = format!(
            "{:<16} {:>14.0} walks/sec vs baseline {:>14.0} ({:+.1}%)",
            k.name,
            k.walks_per_sec,
            base,
            (ratio - 1.0) * 100.0
        );
        if ratio < 1.0 - tolerance {
            bad.push(line);
        } else {
            ok.push(line);
        }
    }
    if bad.is_empty() {
        Ok(ok)
    } else {
        Err(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> PerfReport {
        PerfReport {
            quick: true,
            kernels: vec![
                KernelResult { name: "l1_hit_walk", walks: 10, wall_s: 0.5, walks_per_sec: 20.0 },
                KernelResult { name: "mem_walk", walks: 10, wall_s: 2.0, walks_per_sec: 5.0 },
            ],
            figures: vec![FigureResult { name: "fig4", points: 264, wall_s: 12.0 }],
        }
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let r = tiny_report();
        let parsed = parse_baseline(&r.to_json());
        assert_eq!(
            parsed,
            vec![("l1_hit_walk".to_string(), 20.0), ("mem_walk".to_string(), 5.0)]
        );
    }

    #[test]
    fn schema1_baseline_still_parses() {
        // A verbatim schema-1 `BENCH_perf.json` prefix (the pre-batch
        // format, no `_batch` kernels): the parser is keyed on the kernel
        // entries, not the schema number, so old baselines keep working.
        let v1 = "{\n  \"schema\": 1,\n  \"mode\": \"full\",\n  \"kernels\": [\n    \
                  {\"name\": \"l1_hit_walk\", \"walks\": 2000000, \"wall_s\": 0.0402, \"walks_per_sec\": 49755813.4},\n    \
                  {\"name\": \"mem_walk\", \"walks\": 400000, \"wall_s\": 0.2795, \"walks_per_sec\": 1430886.5}\n  ],\n  \
                  \"figures\": []\n}\n";
        let parsed = parse_baseline(v1);
        assert_eq!(
            parsed,
            vec![
                ("l1_hit_walk".to_string(), 49755813.4),
                ("mem_walk".to_string(), 1430886.5)
            ]
        );
    }

    #[test]
    fn schema2_baseline_still_parses() {
        // A verbatim schema-2 `BENCH_perf.json` prefix (pre-shard format,
        // no `mem_walk_shard*` kernels): old baselines keep comparing.
        let v2 = "{\n  \"schema\": 2,\n  \"mode\": \"full\",\n  \"kernels\": [\n    \
                  {\"name\": \"mem_walk_batch\", \"walks\": 400000, \"wall_s\": 0.2100, \"walks_per_sec\": 1904761.9}\n  ],\n  \
                  \"figures\": []\n}\n";
        assert_eq!(parse_baseline(v2), vec![("mem_walk_batch".to_string(), 1904761.9)]);
    }

    #[test]
    fn schema3_report_lists_shard_kernels() {
        let r = PerfReport {
            quick: true,
            kernels: vec![KernelResult {
                name: "mem_walk_shard8",
                walks: 10,
                wall_s: 0.5,
                walks_per_sec: 20.0,
            }],
            figures: vec![],
        };
        let json = r.to_json();
        assert!(json.contains("\"schema\": 3"));
        assert_eq!(parse_baseline(&json), vec![("mem_walk_shard8".to_string(), 20.0)]);
    }

    #[test]
    fn compare_passes_within_tolerance() {
        let r = tiny_report();
        let baseline = vec![("l1_hit_walk".to_string(), 25.0), ("mem_walk".to_string(), 6.0)];
        // 20 vs 25 is -20%, 5 vs 6 is -16.7%: both inside 30%.
        assert!(compare(&r, &baseline, 0.30).is_ok());
    }

    #[test]
    fn compare_fails_beyond_tolerance() {
        let r = tiny_report();
        let baseline = vec![("l1_hit_walk".to_string(), 40.0)];
        // 20 vs 40 is -50%.
        let err = compare(&r, &baseline, 0.30).unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("l1_hit_walk"));
    }

    #[test]
    fn missing_baseline_entries_are_skipped() {
        let r = tiny_report();
        let baseline = vec![("unrelated".to_string(), 1.0)];
        assert!(compare(&r, &baseline, 0.30).is_ok());
    }

    #[test]
    fn utc_date_is_exact() {
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(86_399), "1970-01-01");
        assert_eq!(utc_date(86_400), "1970-01-02");
        // 2000-02-29 00:00:00 UTC (leap day across a century boundary).
        assert_eq!(utc_date(951_782_400), "2000-02-29");
        // 2026-08-08 12:00:00 UTC.
        assert_eq!(utc_date(1_786_190_400), "2026-08-08");
    }

    #[test]
    fn history_line_is_one_json_object_per_run() {
        let line = history_line(&tiny_report(), 951_782_400, "abc123");
        assert_eq!(
            line,
            "{\"date\": \"2000-02-29\", \"git_sha\": \"abc123\", \"mode\": \"quick\", \
             \"kernels\": {\"l1_hit_walk\": 20.0, \"mem_walk\": 5.0}, \
             \"figures\": {\"fig4\": 12.000}}\n"
        );
        assert_eq!(line.matches('\n').count(), 1, "must stay one JSONL line");
    }

    fn history_text(latest_mem_walk: f64) -> String {
        let mut text = String::new();
        for v in [100.0, 110.0, 90.0, 105.0] {
            text.push_str(&history_line(
                &PerfReport {
                    quick: true,
                    kernels: vec![
                        KernelResult { name: "mem_walk", walks: 1, wall_s: 1.0, walks_per_sec: v },
                        KernelResult { name: "young", walks: 1, wall_s: 1.0, walks_per_sec: 7.0 },
                    ],
                    figures: vec![],
                },
                0,
                "sha",
            ));
        }
        text.push_str(&history_line(
            &PerfReport {
                quick: true,
                kernels: vec![KernelResult {
                    name: "mem_walk",
                    walks: 1,
                    wall_s: 1.0,
                    walks_per_sec: latest_mem_walk,
                }],
                figures: vec![],
            },
            0,
            "sha",
        ));
        text
    }

    #[test]
    fn parse_history_extracts_kernels_and_skips_garbage() {
        let mut text = history_text(100.0);
        text.insert_str(0, "not json at all\n{\"kernels\": {}}\n");
        let entries = parse_history(&text);
        assert_eq!(entries.len(), 5, "two malformed lines must be skipped");
        assert_eq!(entries[0][0], ("mem_walk".to_string(), 100.0));
        assert_eq!(entries[0][1], ("young".to_string(), 7.0));
    }

    #[test]
    fn check_history_passes_a_steady_kernel() {
        // Trailing median of [100, 110, 90, 105] is 102.5; 95 is -7.3%.
        let lines = check_history(&history_text(95.0), 0.30).unwrap();
        assert!(lines.iter().any(|l| l.contains("mem_walk")), "{lines:?}");
    }

    #[test]
    fn check_history_flags_a_trend_regression() {
        // 60 vs a 102.5 median is -41%: beyond the 30% tolerance.
        let err = check_history(&history_text(60.0), 0.30).unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("mem_walk"), "{err:?}");
        // The same drop passes at a looser tolerance.
        assert!(check_history(&history_text(60.0), 0.50).is_ok());
    }

    #[test]
    fn check_history_skips_kernels_without_enough_priors() {
        // `young` appears in the latest entry of a 2-line history: only
        // one prior, so it is reported but never gated even at 1000x drop.
        let mut text = String::new();
        for v in [7000.0, 7.0] {
            text.push_str(&history_line(
                &PerfReport {
                    quick: true,
                    kernels: vec![KernelResult {
                        name: "young",
                        walks: 1,
                        wall_s: 1.0,
                        walks_per_sec: v,
                    }],
                    figures: vec![],
                },
                0,
                "sha",
            ));
        }
        let lines = check_history(&text, 0.30).unwrap();
        assert!(lines[0].contains("not gated"), "{lines:?}");
        assert!(check_history("", 0.30).is_err(), "an empty history is an error");
    }

    #[test]
    fn append_history_creates_and_grows_the_file() {
        let dir = std::env::temp_dir().join(format!("hswx-perfhist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_history.jsonl");
        let _ = std::fs::remove_file(&path);
        append_history(&path, &tiny_report(), 0, "aaa").unwrap();
        append_history(&path, &tiny_report(), 86_400, "bbb").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().nth(1).unwrap().contains("\"git_sha\": \"bbb\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quick_kernels_run_and_report_positive_throughput() {
        // Miniature run so the suite stays fast: exercise each kernel with
        // a tiny iteration count through the public entry points.
        let k = super::l1_hit_walk(256);
        assert!(k.walks_per_sec > 0.0);
        let k = super::mem_walk(256);
        assert!(k.walks_per_sec > 0.0);
        let k = super::mem_walk_batch(256);
        assert!(k.walks_per_sec > 0.0);
        let k = super::mem_walk_shard("mem_walk_shard2", 2, 256);
        assert!(k.walks_per_sec > 0.0);
        let k = super::placement_l3_batch(256);
        assert!(k.walks_per_sec > 0.0);
    }
}
