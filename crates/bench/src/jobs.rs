//! Campaign job registry: figure/table artifacts as supervised jobs.
//!
//! Each [`JobSpec`] names its artifact, the jobs it depends on, and a
//! pure builder that the [`crate::supervisor::Supervisor`] can retry,
//! watchdog, and journal. The builders are shared with the standalone
//! `src/bin` regenerators, so `hswx campaign` and `cargo run --bin fig4`
//! emit byte-identical artifacts.

use crate::checkpoint::CheckpointStore;
use crate::scenarios::latency_curve;
use hswx_haswell::placement::PlacedState::{self, Exclusive, Modified, Shared};
use hswx_haswell::report::{sweep_sizes, Figure, Series, Table};
use hswx_haswell::spec::{table1_uarch_comparison, table2_test_system};
use hswx_haswell::CoherenceMode::SourceSnoop;
use hswx_haswell::{CoherenceMode, SystemConfig};
use hswx_mem::{CoreId, NodeId};
use std::sync::Arc;

/// Per-attempt context the supervisor hands each job.
#[derive(Debug, Clone)]
pub struct JobCtx {
    /// Campaign seed, perturbed deterministically per retry attempt.
    pub seed: u64,
    /// The campaign's time budget is exhausted: shed work (fewer sweep
    /// points) and mark the artifact as degraded instead of dying.
    pub degraded: bool,
    /// Mid-job checkpoint store (see [`crate::checkpoint`]): jobs record
    /// each independently computed sweep point here so a killed campaign
    /// resumes from the last point instead of the last whole job. `None`
    /// when running outside the supervisor (standalone regenerators).
    pub checkpoint: Option<Arc<CheckpointStore>>,
    /// Worker threads a job may hand to the sharded batch runtime
    /// (`System::run_batch_sharded`). Sharded results are bit-identical
    /// at any thread count, so this only changes wall-clock, never
    /// artifact bytes. Validated at the CLI boundary via
    /// [`hswx_haswell::ShardConfig::validate`].
    pub threads: usize,
}

impl JobCtx {
    /// Context with no checkpointing (standalone runs, tests).
    pub fn bare(seed: u64, degraded: bool) -> Self {
        JobCtx { seed, degraded, checkpoint: None, threads: 1 }
    }
}

/// Files a job produced: `(file name, contents)` pairs. The supervisor
/// writes each atomically under the output directory and digests them
/// into the journal.
#[derive(Debug, Clone, Default)]
pub struct JobOutput {
    /// `(file name, contents)` pairs, in write order.
    pub files: Vec<(String, String)>,
}

/// One artifact-producing campaign job.
#[derive(Clone, Copy)]
pub struct JobSpec {
    /// Stable identifier: the journal key and artifact file stem.
    pub id: &'static str,
    /// Jobs that must complete before this one may start.
    pub deps: &'static [&'static str],
    /// Pure artifact builder. Safe to retry: every call constructs fresh
    /// simulators and touches no shared state.
    pub run: fn(&JobCtx) -> JobOutput,
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec").field("id", &self.id).field("deps", &self.deps).finish()
    }
}

/// The registered campaign jobs. The spec tables cross-check the
/// simulated configuration against the paper's test system, so the
/// figure sweep only starts once that cross-check artifact exists.
pub fn registry() -> Vec<JobSpec> {
    vec![
        JobSpec { id: "table1", deps: &[], run: run_table1 },
        JobSpec { id: "table2", deps: &[], run: run_table2 },
        JobSpec { id: "fig4", deps: &["table2"], run: run_fig4 },
    ]
}

fn run_table1(_ctx: &JobCtx) -> JobOutput {
    let t = table1();
    JobOutput { files: vec![("table1.txt".into(), t.to_text()), ("table1.csv".into(), t.csv_body())] }
}

fn run_table2(_ctx: &JobCtx) -> JobOutput {
    let t = table2();
    JobOutput { files: vec![("table2.txt".into(), t.to_text()), ("table2.csv".into(), t.csv_body())] }
}

fn run_fig4(ctx: &JobCtx) -> JobOutput {
    let all = sweep_sizes();
    let sizes: Vec<u64> =
        if ctx.degraded { all.iter().copied().step_by(4).collect() } else { all };
    let fig = fig4_with_checkpoint(&sizes, ctx.checkpoint.as_deref());
    let mut text = fig.to_text();
    if ctx.degraded {
        text.push_str("# degraded: sweep reduced to every 4th size (time budget exhausted)\n");
    }
    JobOutput { files: vec![("fig4.txt".into(), text), ("fig4.csv".into(), fig.csv_body())] }
}

/// One fig4 latency series, memoized per sweep point when a checkpoint
/// store is present. Cached values are bit-exact, so a resumed sweep
/// emits a byte-identical artifact; keys cover the series label, size,
/// and the full config digest, so a changed calibration or mode can
/// never replay stale points.
#[allow(clippy::too_many_arguments)]
fn curve_memo(
    ckpt: Option<&CheckpointStore>,
    label: &str,
    mode: CoherenceMode,
    placers: &[CoreId],
    state: PlacedState,
    home: NodeId,
    measurer: CoreId,
    sizes: &[u64],
) -> Vec<(f64, f64)> {
    let Some(ckpt) = ckpt else {
        return latency_curve(mode, placers, state, home, measurer, sizes);
    };
    let cfg_digest = SystemConfig::e5_2680_v3(mode).digest().to_le_bytes();
    let key_of = |size: u64| {
        CheckpointStore::key(&[b"fig4", label.as_bytes(), &size.to_le_bytes(), &cfg_digest])
    };
    // Each size builds its own fresh simulator, so points are independent:
    // compute only the missing ones (in one parallel batch, preserving the
    // uncheckpointed run's parallelism) and stitch the curve together.
    let missing: Vec<u64> =
        sizes.iter().copied().filter(|&s| ckpt.lookup(key_of(s)).is_none()).collect();
    let computed = latency_curve(mode, placers, state, home, measurer, &missing);
    for (&size, &(_, ns)) in missing.iter().zip(&computed) {
        ckpt.record(key_of(size), ns);
    }
    sizes
        .iter()
        .map(|&s| {
            let ns = ckpt.lookup(key_of(s)).expect("point recorded above");
            (s as f64, ns)
        })
        .collect()
}

/// Paper Table I: Sandy Bridge vs Haswell micro-architecture.
pub fn table1() -> Table {
    let mut t = Table::new("table1", &["feature", "Sandy Bridge", "Haswell"]);
    for row in table1_uarch_comparison() {
        t.row(row.feature, vec![row.sandy_bridge.to_string(), row.haswell.to_string()]);
    }
    t
}

/// Paper Table II: the test-system configuration, cross-checked against
/// the simulator's actual configuration.
pub fn table2() -> Table {
    let spec = table2_test_system();
    let cfg = SystemConfig::e5_2680_v3(CoherenceMode::SourceSnoop);
    let mut t = Table::new("table2", &["property", "value", "simulator"]);
    t.row("processor", vec![spec.processor.into(), "modelled".into()]);
    t.row(
        "cores",
        vec![
            format!("{} x {}", spec.sockets, spec.cores_per_socket),
            format!("{}", cfg.n_cores()),
        ],
    );
    t.row(
        "core / AVX clock",
        vec![
            format!("{:.1} / {:.1} GHz", spec.core_ghz, spec.avx_ghz),
            format!("{:.1} / {:.1} GHz", cfg.calib.core_ghz, cfg.calib.avx_ghz),
        ],
    );
    t.row(
        "L1D / L2 per core",
        vec![
            format!("{} KiB / {} KiB", spec.l1d_kib, spec.l2_kib),
            format!("{} KiB / {} KiB", cfg.l1.size_bytes / 1024, cfg.l2.size_bytes / 1024),
        ],
    );
    t.row(
        "L3 per socket",
        vec![
            format!("{} MiB", spec.l3_mib),
            format!("{} MiB", cfg.l3_slice.size_bytes * 12 / (1 << 20)),
        ],
    );
    t.row(
        "memory",
        vec![
            format!("{}x DDR4-{} ({:.1} GB/s/socket)", spec.channels, spec.mem_mt_s, spec.mem_gb_s),
            format!("{}x {:.2} GB/s channels", spec.channels, cfg.dram.bus_gb_s),
        ],
    );
    t.row(
        "QPI",
        vec![
            format!("2 links @ {:.1} GT/s ({:.1} GB/s each/dir)", spec.qpi_gt_s, spec.qpi_gb_s),
            format!("{:.1} GB/s aggregated per direction", cfg.calib.qpi_gb_s),
        ],
    );
    t
}

/// Paper Figure 4: memory read latency vs data-set size in the default
/// (source snoop) configuration — local hierarchy, another core in the
/// same NUMA node, and the other socket, for M/E/S cache lines.
pub fn fig4(sizes: &[u64]) -> Figure {
    fig4_with_checkpoint(sizes, None)
}

/// [`fig4`] with optional per-point memoization through a
/// [`CheckpointStore`] — the supervised-campaign path.
pub fn fig4_with_checkpoint(sizes: &[u64], ckpt: Option<&CheckpointStore>) -> Figure {
    let c0 = CoreId(0);
    let c1 = CoreId(1);
    let c2 = CoreId(2);
    let c12 = CoreId(12);
    let c13 = CoreId(13);
    let mut fig = Figure::new("fig4", "ns per load");
    let mut add = |label: &str, placers: &[CoreId], state: PlacedState, home: NodeId| {
        let pts = curve_memo(ckpt, label, SourceSnoop, placers, state, home, c0, sizes);
        let mut s = Series::new(label);
        for (x, y) in pts {
            s.push(x, y);
        }
        fig.add(s);
    };

    // Local hierarchy (placer = measurer).
    add("local M", &[c0], Modified, NodeId(0));
    add("local E", &[c0], Exclusive, NodeId(0));
    // Within NUMA node (placer core 1, measurer core 0).
    add("node M", &[c1], Modified, NodeId(0));
    add("node E", &[c1], Exclusive, NodeId(0));
    add("node S", &[c1, c2], Shared, NodeId(0));
    // Other NUMA node, 1 QPI hop (placer socket 1, data homed there).
    add("remote M", &[c12], Modified, NodeId(1));
    add("remote E", &[c12], Exclusive, NodeId(1));
    add("remote S", &[c12, c13], Shared, NodeId(1));
    fig
}
