//! Calibration anchors: paper measurement vs simulator.
//!
//! Every headline number from the paper's §VI (latency) and §VII
//! (bandwidth) expressed as a runnable scenario. `bin/calibrate` prints the
//! whole suite; integration tests assert the important ones within
//! tolerances; `EXPERIMENTS.md` records the final values.

use crate::scenarios::{
    aggregate_read, aggregate_write, first_core_of, nth_core_of, BandwidthScenario,
    LatencyScenario,
};
use hswx_haswell::microbench::LoadWidth;
use hswx_haswell::placement::{Level, PlacedState};
use hswx_haswell::CoherenceMode;
use hswx_mem::{CoreId, NodeId};

/// One calibration anchor.
pub struct Anchor {
    /// Human-readable scenario name.
    pub name: &'static str,
    /// The paper's measured value.
    pub paper: f64,
    /// The simulator's emergent value.
    pub sim: f64,
}

impl Anchor {
    /// Relative error of the simulation vs the paper.
    pub fn rel_err(&self) -> f64 {
        (self.sim - self.paper) / self.paper
    }
}

fn lat(
    mode: CoherenceMode,
    placers: &[CoreId],
    state: PlacedState,
    level: Level,
    home: u8,
    measurer: CoreId,
) -> f64 {
    LatencyScenario {
        mode,
        placers: placers.to_vec(),
        state,
        level,
        home: NodeId(home),
        measurer,
        size: None,
    }
    .run()
}

/// The latency anchor suite (paper §VI, Figures 4–6, Table III).
pub fn latency_anchors() -> Vec<Anchor> {
    use CoherenceMode::*;
    use Level::*;
    use PlacedState::*;
    let c0 = CoreId(0);
    let mut v = Vec::new();
    let mut a = |name: &'static str, paper: f64, sim: f64| v.push(Anchor { name, paper, sim });

    // --- source snoop (default), Figure 4 ---
    a("src local L1", 1.6, lat(SourceSnoop, &[c0], Modified, L1, 0, c0));
    a("src local L2", 4.8, lat(SourceSnoop, &[c0], Modified, L2, 0, c0));
    a("src local L3 (M)", 21.2, lat(SourceSnoop, &[c0], Modified, L3, 0, c0));
    a("src local L3 (E self)", 21.2, lat(SourceSnoop, &[c0], Exclusive, L3, 0, c0));
    a("src local mem", 96.4, lat(SourceSnoop, &[c0], Exclusive, Memory, 0, c0));
    // within NUMA node (placer core 1, measurer core 0)
    let c1 = CoreId(1);
    a("src node M in L1", 53.0, lat(SourceSnoop, &[c1], Modified, L1, 0, c0));
    a("src node M in L2", 49.0, lat(SourceSnoop, &[c1], Modified, L2, 0, c0));
    a("src node M in L3", 21.2, lat(SourceSnoop, &[c1], Modified, L3, 0, c0));
    a("src node E in L3 (stale CV)", 44.4, lat(SourceSnoop, &[c1], Exclusive, L3, 0, c0));
    a(
        "src node shared L3",
        21.2,
        lat(SourceSnoop, &[c1, CoreId(2)], Shared, L3, 0, c0),
    );
    // other socket (placer core 12, data homed node 1)
    let c12 = CoreId(12);
    a("src remote M in L1", 113.0, lat(SourceSnoop, &[c12], Modified, L1, 1, c0));
    a("src remote M in L2", 109.0, lat(SourceSnoop, &[c12], Modified, L2, 1, c0));
    a("src remote M in L3", 86.0, lat(SourceSnoop, &[c12], Modified, L3, 1, c0));
    a("src remote E in L3", 104.0, lat(SourceSnoop, &[c12], Exclusive, L3, 1, c0));
    a("src remote mem", 146.0, lat(SourceSnoop, &[c12], Exclusive, Memory, 1, c0));

    // --- home snoop (Figure 5, Table III) ---
    a("hs local L3", 21.2, lat(HomeSnoop, &[c0], Exclusive, L3, 0, c0));
    a("hs remote E in L3", 115.0, lat(HomeSnoop, &[c12], Exclusive, L3, 1, c0));
    a("hs local mem", 108.0, lat(HomeSnoop, &[c0], Exclusive, Memory, 0, c0));
    a("hs remote mem", 146.0, lat(HomeSnoop, &[c12], Exclusive, Memory, 1, c0));

    // --- COD (Figure 6, Table III) ---
    let n0 = first_core_of(ClusterOnDie, 0); // core 0
    let n0b = nth_core_of(ClusterOnDie, 0, 1); // core 1
    let n1 = first_core_of(ClusterOnDie, 1); // core 6
    let n1b = nth_core_of(ClusterOnDie, 1, 1);
    let n2 = first_core_of(ClusterOnDie, 2);
    let n2b = nth_core_of(ClusterOnDie, 2, 1);
    let n3 = first_core_of(ClusterOnDie, 3);
    let n3b = nth_core_of(ClusterOnDie, 3, 1);
    a("cod local L3", 18.0, lat(ClusterOnDie, &[n0], Exclusive, L3, 0, n0));
    a("cod local L3 + core snoop", 37.2, lat(ClusterOnDie, &[n0b], Exclusive, L3, 0, n0));
    a("cod node1 L3 (M)", 57.2, lat(ClusterOnDie, &[n1], Modified, L3, 1, n0));
    a("cod node1 L3 (E)", 73.6, lat(ClusterOnDie, &[n1b], Exclusive, L3, 1, n0));
    a("cod node2 L3 (M)", 90.0, lat(ClusterOnDie, &[n2], Modified, L3, 2, n0));
    a("cod node2 L3 (E)", 104.0, lat(ClusterOnDie, &[n2b], Exclusive, L3, 2, n0));
    a("cod node3 L3 (M)", 96.0, lat(ClusterOnDie, &[n3], Modified, L3, 3, n0));
    a("cod node3 L3 (E)", 111.0, lat(ClusterOnDie, &[n3b], Exclusive, L3, 3, n0));
    a("cod local mem", 89.6, lat(ClusterOnDie, &[n0], Exclusive, Memory, 0, n0));
    a("cod node2 mem (1 hop)", 141.0, lat(ClusterOnDie, &[n2], Exclusive, Memory, 2, n0));
    a("cod node3 mem (2 hops)", 147.0, lat(ClusterOnDie, &[n3], Exclusive, Memory, 3, n0));
    a(
        "cod node3 mem (3 hops, from node1)",
        153.0,
        lat(ClusterOnDie, &[n3], Exclusive, Memory, 3, n1),
    );
    // Table IV off-diagonal: F copy in node1, home node2, read from node0.
    a(
        "cod tIV F:1 H:2",
        170.0,
        lat(ClusterOnDie, &[n2, n1], Shared, L3, 2, n0),
    );
    a(
        "cod tIV F:2 H:1",
        166.0,
        lat(ClusterOnDie, &[n1, n2], Shared, L3, 1, n0),
    );
    // Table IV diagonal: shared within home node only.
    a(
        "cod tIV diag H:1",
        57.2,
        lat(ClusterOnDie, &[n1, n1b], Shared, L3, 1, n0),
    );
    // Table V: memory with stale snoop-all directory (was shared cross-node).
    a(
        "cod tV F:0 H:1 (stale dir)",
        182.0,
        lat(ClusterOnDie, &[n1, n0], Shared, Memory, 1, n0),
    );
    a(
        "cod tV diag H:1",
        96.0,
        lat(ClusterOnDie, &[n1, n1b], Shared, Memory, 1, n0),
    );
    v
}

/// The bandwidth anchor suite (paper §VII, Figures 8/9, Tables VI–VIII).
pub fn bandwidth_anchors() -> Vec<Anchor> {
    use CoherenceMode::*;
    use Level::*;
    use PlacedState::*;
    let c0 = CoreId(0);
    let c1 = CoreId(1);
    let c12 = CoreId(12);
    let mut v = Vec::new();
    let mut a = |name: &'static str, paper: f64, sim: f64| v.push(Anchor { name, paper, sim });

    let bw = |mode, placers: &[CoreId], state, level, home, measurer, width| {
        BandwidthScenario {
            mode,
            placers: placers.to_vec(),
            state,
            level,
            home: NodeId(home),
            measurer,
            width,
            size: None,
        }
        .run()
    };

    // Figure 8: single-threaded, default configuration.
    a("bw L1 AVX", 127.2, bw(SourceSnoop, &[c0], Modified, L1, 0, c0, LoadWidth::Avx256));
    a("bw L1 SSE", 77.1, bw(SourceSnoop, &[c0], Modified, L1, 0, c0, LoadWidth::Sse128));
    a("bw L2 AVX", 69.1, bw(SourceSnoop, &[c0], Modified, L2, 0, c0, LoadWidth::Avx256));
    a("bw L2 SSE", 48.2, bw(SourceSnoop, &[c0], Modified, L2, 0, c0, LoadWidth::Sse128));
    a("bw local L3", 26.2, bw(SourceSnoop, &[c0], Modified, L3, 0, c0, LoadWidth::Avx256));
    a(
        "bw local L3 snoop (E other)",
        15.0,
        bw(SourceSnoop, &[c1], Exclusive, L3, 0, c0, LoadWidth::Avx256),
    );
    a("bw node M in L1", 7.8, bw(SourceSnoop, &[c1], Modified, L1, 0, c0, LoadWidth::Avx256));
    a("bw node M in L2", 10.6, bw(SourceSnoop, &[c1], Modified, L2, 0, c0, LoadWidth::Avx256));
    a("bw remote L3 (M)", 9.1, bw(SourceSnoop, &[c12], Modified, L3, 1, c0, LoadWidth::Avx256));
    a("bw remote L3 (E)", 8.7, bw(SourceSnoop, &[c12], Exclusive, L3, 1, c0, LoadWidth::Avx256));
    a("bw remote M in L1", 6.7, bw(SourceSnoop, &[c12], Modified, L1, 1, c0, LoadWidth::Avx256));
    a("bw remote M in L2", 8.1, bw(SourceSnoop, &[c12], Modified, L2, 1, c0, LoadWidth::Avx256));
    a("bw local mem", 10.3, bw(SourceSnoop, &[c0], Exclusive, Memory, 0, c0, LoadWidth::Avx256));
    a("bw remote mem", 8.0, bw(SourceSnoop, &[c12], Exclusive, Memory, 1, c0, LoadWidth::Avx256));
    // Table VI: other configurations.
    a("bw hs local mem", 9.5, bw(HomeSnoop, &[c0], Exclusive, Memory, 0, c0, LoadWidth::Avx256));
    a("bw cod local L3", 29.0, {
        let n0 = first_core_of(ClusterOnDie, 0);
        bw(ClusterOnDie, &[n0], Modified, L3, 0, n0, LoadWidth::Avx256)
    });
    a("bw cod local mem", 12.6, {
        let n0 = first_core_of(ClusterOnDie, 0);
        bw(ClusterOnDie, &[n0], Exclusive, Memory, 0, n0, LoadWidth::Avx256)
    });

    // Aggregates (§VII-B, Tables VII/VIII).
    let cores12: Vec<CoreId> = (0..12).map(CoreId).collect();
    a(
        "bw agg L3 12 cores",
        278.0,
        aggregate_read(SourceSnoop, &cores12, |_| NodeId(0), Level::L3, 1 << 20),
    );
    a(
        "bw agg local mem 12 cores",
        63.0,
        aggregate_read(SourceSnoop, &cores12, |_| NodeId(0), Level::Memory, 32 << 20),
    );
    a(
        "bw agg remote mem src 12 cores",
        16.8,
        aggregate_read(SourceSnoop, &cores12, |_| NodeId(1), Level::Memory, 32 << 20),
    );
    a(
        "bw agg remote mem hs 12 cores",
        30.6,
        aggregate_read(HomeSnoop, &cores12, |_| NodeId(1), Level::Memory, 32 << 20),
    );
    a(
        "bw agg write mem 12 cores",
        25.8,
        aggregate_write(SourceSnoop, &cores12, |_| NodeId(0), 4 << 20),
    );
    a("bw agg cod local mem 6 cores", 32.5, {
        let cores: Vec<CoreId> = (0..6)
            .map(|i| nth_core_of(ClusterOnDie, 0, i))
            .collect();
        aggregate_read(ClusterOnDie, &cores, |_| NodeId(0), Level::Memory, 32 << 20)
    });
    v
}
