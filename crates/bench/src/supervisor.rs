//! Supervised campaign runtime: dependency-aware job queue with watchdog
//! deadlines, bounded retry, crash-safe journaling, and time-budget
//! degradation.
//!
//! The [`Supervisor`] runs [`JobSpec`]s in dependency waves. Within a
//! wave, jobs fan out over [`crate::parallel::parallel_try_map`], so one
//! panicking job never aborts its siblings. Around each job attempt the
//! supervisor installs an ambient [`CancelToken`] carrying the per-job
//! wall-clock deadline; the simulator walk loop polls that token, so a
//! wedged sweep degrades into a typed `Cancelled` walk error (which the
//! scenario surfaces as a panic) instead of hanging the campaign. Failed
//! attempts retry up to a bound, perturbing the job seed with the golden
//! ratio so a retried job never replays the exact same random choices:
//! `seed ^ attempt * 0x9E37_79B9_7F4A_7C15`.
//!
//! Completed jobs are committed to a crash-safe journal: every artifact
//! file is written via tmp+`rename`, the journal records a per-job
//! digest over the artifact bytes, and the journal file itself is
//! rewritten atomically after every job (optionally fsynced). A campaign
//! killed at any instant therefore leaves only (a) fully written
//! artifacts it had journaled and (b) invisible temp files; `--resume`
//! replays the journal, re-verifies each digest against the bytes on
//! disk, and skips exactly the jobs that fully committed.
//!
//! When a time budget is set and exhausted, remaining jobs still run but
//! in *degraded* mode: they shed sweep repetitions and their artifacts
//! and journal entries are marked degraded, preferring a partial result
//! over no result.

use crate::checkpoint::CheckpointStore;
use crate::jobs::{JobCtx, JobOutput, JobSpec};
use crate::parallel::{panic_message, parallel_try_map};
use hswx_engine::{
    atomic_write, fnv1a64, fnv1a64_extend, CancelToken, Heartbeat, MetricsRegistry, TelemetryHub,
    TelemetrySampler,
};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Golden-ratio constant used to perturb the job seed per retry attempt.
pub const RETRY_SEED_PERTURB: u64 = 0x9E37_79B9_7F4A_7C15;

/// First line of every journal, bumped on format changes.
const JOURNAL_MAGIC: &str = "hswx-campaign v1";

/// Supervisor policy knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Directory artifacts are written into (created if missing).
    pub out_dir: PathBuf,
    /// Journal path (conventionally `<out_dir>/campaign.journal`).
    pub journal: PathBuf,
    /// Replay the journal and skip jobs whose digests still verify.
    pub resume: bool,
    /// fsync the journal (and its directory) on every commit.
    pub fsync: bool,
    /// Campaign seed; per-attempt seeds derive from it.
    pub seed: u64,
    /// Attempts per job before it counts as failed (>= 1).
    pub max_attempts: u32,
    /// Per-job wall-clock watchdog deadline.
    pub job_deadline: Option<Duration>,
    /// Campaign-level time budget: once exceeded, remaining jobs run
    /// degraded instead of being dropped.
    pub time_budget: Option<Duration>,
    /// Force degraded mode from the start (deterministic shedding, used
    /// by smoke runs and tests).
    pub force_degraded: bool,
    /// Worker threads handed to each job via [`JobCtx::threads`] for
    /// sharded batch phases. Sharded planning is bit-identical at any
    /// thread count, so this never changes artifact bytes or digests —
    /// only wall-clock. Validated at the CLI boundary.
    pub threads: usize,
    /// Sample simulated-time telemetry during every job (an ambient
    /// [`TelemetryHub`] per attempt). Per-channel totals land in the
    /// journal and manifest; the merged series is available from
    /// [`CampaignSummary::telemetry_merged`]. Off by default: sampling is
    /// proven transparent, but the armed walk path is not free.
    pub telemetry: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            out_dir: PathBuf::from("results"),
            journal: PathBuf::from("results/campaign.journal"),
            resume: false,
            fsync: false,
            seed: 0x1CC_2015,
            max_attempts: 2,
            job_deadline: None,
            time_budget: None,
            force_degraded: false,
            threads: 1,
            telemetry: false,
        }
    }
}

/// Journal record for one committed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// FNV-1a 64 digest over the job's artifact names and bytes.
    pub digest: u64,
    /// Attempts the job needed (1 = first try).
    pub attempts: u32,
    /// Whether the job ran in degraded (shed) mode.
    pub degraded: bool,
    /// Artifact file names, in write order.
    pub files: Vec<String>,
    /// Counter snapshot from the job's successful attempt (sorted by
    /// name): every simulator the job built drained its walk, snoop,
    /// HitME, directory, DRAM, QPI, and recovery counters here. Not part
    /// of the artifact digest — metrics describe the run, not the result.
    pub metrics: Vec<(String, u64)>,
    /// Per-channel telemetry totals (sorted by name), present when the
    /// campaign sampled telemetry. Like `metrics`, not digested.
    pub telemetry: Vec<(String, u64)>,
}

/// Per-job outcome in the final summary.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Job id.
    pub id: String,
    /// Journal record the job committed (or resumed).
    pub entry: JournalEntry,
    /// True when the job was skipped because the journal already had a
    /// verified entry for it.
    pub resumed: bool,
    /// Full simulated-time series the job's attempt sampled (jobs run
    /// this invocation with telemetry on; journal-resumed jobs keep only
    /// the totals in their entry).
    pub sampler: Option<TelemetrySampler>,
}

/// Full campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    /// Jobs that committed this run or verified on resume.
    pub completed: Vec<JobReport>,
    /// `(job id, error)` for jobs that exhausted their attempts.
    pub failed: Vec<(String, String)>,
    /// Jobs never started because a dependency failed.
    pub blocked: Vec<String>,
    /// Whether any job ran in degraded mode.
    pub degraded: bool,
}

impl CampaignSummary {
    /// Campaign-wide counter totals, summed over every completed job
    /// (including journal-resumed ones, whose metrics were persisted).
    pub fn metrics_totals(&self) -> Vec<(String, u64)> {
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        for r in &self.completed {
            for (name, v) in &r.entry.metrics {
                *totals.entry(name).or_insert(0) += v;
            }
        }
        totals.into_iter().map(|(n, v)| (n.to_string(), v)).collect()
    }

    /// Campaign-wide telemetry channel totals, summed over every
    /// completed job (persisted in the journal, so resumed jobs count).
    pub fn telemetry_totals(&self) -> Vec<(String, u64)> {
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        for r in &self.completed {
            for (name, v) in &r.entry.telemetry {
                *totals.entry(name).or_insert(0) += v;
            }
        }
        totals.into_iter().map(|(n, v)| (n.to_string(), v)).collect()
    }

    /// The merged simulated-time series over every job that actually ran
    /// (and sampled) this invocation, or `None` when nothing sampled.
    /// Job sims all start at simulated time zero, so the merge is an
    /// aggregate activity profile; the merge order does not matter.
    pub fn telemetry_merged(&self) -> Option<TelemetrySampler> {
        let mut merged: Option<TelemetrySampler> = None;
        for r in &self.completed {
            if let Some(s) = &r.sampler {
                match &mut merged {
                    Some(m) => m.merge(s.clone()),
                    None => merged = Some(s.clone()),
                }
            }
        }
        merged
    }
}

impl CampaignSummary {
    /// Whether every job committed.
    pub fn ok(&self) -> bool {
        self.failed.is_empty() && self.blocked.is_empty()
    }
}

impl fmt::Display for CampaignSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.completed {
            writeln!(
                f,
                "{:<10} {} digest={:016x} attempts={}{}",
                r.id,
                if r.resumed { "skipped (journal)" } else { "done             " },
                r.entry.digest,
                r.entry.attempts,
                if r.entry.degraded { " DEGRADED" } else { "" },
            )?;
        }
        for (id, err) in &self.failed {
            writeln!(f, "{id:<10} FAILED: {err}")?;
        }
        for id in &self.blocked {
            writeln!(f, "{id:<10} BLOCKED (dependency failed)")?;
        }
        let status = if !self.ok() {
            "completed with failures"
        } else if self.degraded {
            "completed (degraded)"
        } else {
            "completed"
        };
        writeln!(
            f,
            "campaign {status}: {} done, {} failed, {} blocked",
            self.completed.len(),
            self.failed.len(),
            self.blocked.len()
        )
    }
}

/// Dependency-aware supervised job runner (see module docs).
pub struct Supervisor {
    cfg: SupervisorConfig,
}

impl Supervisor {
    /// Build a supervisor with the given policy.
    pub fn new(cfg: SupervisorConfig) -> Self {
        Supervisor { cfg }
    }

    /// Run `jobs` to completion (or bounded failure) and return the
    /// summary. Errors only on environmental problems (unwritable output
    /// directory, corrupt journal header); job failures are reported in
    /// the summary instead.
    pub fn run(&self, jobs: &[JobSpec]) -> Result<CampaignSummary, String> {
        let cfg = &self.cfg;
        std::fs::create_dir_all(&cfg.out_dir)
            .map_err(|e| format!("{}: {e}", cfg.out_dir.display()))?;
        validate_deps(jobs)?;

        let mut resumed: BTreeMap<String, JournalEntry> = BTreeMap::new();
        if cfg.resume {
            for (id, entry) in self.load_journal()? {
                if self.verify_entry(&entry) {
                    resumed.insert(id, entry);
                }
                // A missing or mismatched artifact silently falls through
                // to a rerun: the journal promises at-least-once, the
                // digest check upgrades it to exactly-the-same-bytes.
            }
        }

        let start = Instant::now();
        let state = Mutex::new(resumed.clone());
        let mut summary = CampaignSummary::default();
        for (id, entry) in &resumed {
            summary.completed.push(JobReport {
                id: id.clone(),
                entry: entry.clone(),
                resumed: true,
                sampler: None,
            });
        }
        let mut pending: Vec<&JobSpec> =
            jobs.iter().filter(|j| !resumed.contains_key(j.id)).collect();

        // Live progress for `hswx top`: rewritten (atomically) on every
        // job state change, so a tailing dashboard never sees a torn
        // frame and a crashed campaign leaves its last true state behind.
        let hb_path = cfg.out_dir.join("heartbeat.txt");
        let heartbeat = Mutex::new({
            let mut hb = Heartbeat::start("campaign", jobs.len() as u64);
            hb.done = resumed.len() as u64;
            hb
        });
        let beat = |update: &mut dyn FnMut(&mut Heartbeat)| {
            let mut hb = heartbeat.lock().unwrap_or_else(|e| e.into_inner());
            hb.elapsed_ms = start.elapsed().as_millis() as u64;
            update(&mut hb);
            hb.update_eta();
            let _ = hb.write(&hb_path);
        };
        beat(&mut |_| {});

        while !pending.is_empty() {
            let done_ids: Vec<String> =
                state.lock().unwrap_or_else(|e| e.into_inner()).keys().cloned().collect();
            let ready: Vec<&JobSpec> = pending
                .iter()
                .copied()
                .filter(|j| j.deps.iter().all(|d| done_ids.iter().any(|x| x == d)))
                .collect();
            if ready.is_empty() {
                break; // everything left is blocked behind a failure
            }
            pending.retain(|j| !ready.iter().any(|r| r.id == j.id));

            let (results, panics) = parallel_try_map(ready.clone(), |job| {
                let degraded = cfg.force_degraded
                    || cfg.time_budget.is_some_and(|b| start.elapsed() > b);
                beat(&mut |hb| hb.inflight += 1);
                let attempt_result = self.attempt(job, degraded);
                let (output, attempts, metrics, sampler) = match attempt_result {
                    Ok(r) => r,
                    Err(e) => {
                        beat(&mut |hb| {
                            hb.inflight = hb.inflight.saturating_sub(1);
                            hb.failed += 1;
                        });
                        return Err(e);
                    }
                };
                let entry =
                    self.commit(job, &output, attempts, degraded, metrics, &sampler, &state)?;
                beat(&mut |hb| {
                    hb.inflight = hb.inflight.saturating_sub(1);
                    hb.done += 1;
                    hb.retries += (attempts - 1) as u64;
                    add_totals(&mut hb.metrics, &entry.metrics);
                });
                Ok::<(JournalEntry, bool, Option<TelemetrySampler>), String>((
                    entry, degraded, sampler,
                ))
            });
            for (i, res) in results.into_iter().enumerate() {
                let id = ready[i].id.to_string();
                match res {
                    Some(Ok((entry, degraded, sampler))) => {
                        summary.degraded |= degraded;
                        summary.completed.push(JobReport { id, entry, resumed: false, sampler });
                    }
                    Some(Err(e)) => summary.failed.push((id, e)),
                    // A panic escaping `attempt`'s own catch_unwind means
                    // the commit path itself blew up.
                    None => summary.failed.push((
                        id.clone(),
                        panics
                            .iter()
                            .find(|p| ready[p.index].id == id)
                            .map(|p| p.panic.clone())
                            .unwrap_or_else(|| "job panicked".into()),
                    )),
                }
            }
        }
        summary.blocked = pending.iter().map(|j| j.id.to_string()).collect();
        self.write_manifest(&state.lock().unwrap_or_else(|e| e.into_inner()))?;
        beat(&mut |hb| {
            hb.inflight = 0;
            hb.failed = summary.failed.len() as u64;
            hb.status =
                if summary.ok() { "done".to_string() } else { "failed".to_string() };
        });
        Ok(summary)
    }

    /// Run one job with bounded retries and a per-attempt watchdog.
    /// Returns the output, the attempt count, and the counter snapshot of
    /// the winning attempt's metrics registry.
    #[allow(clippy::type_complexity)]
    fn attempt(
        &self,
        job: &JobSpec,
        degraded: bool,
    ) -> Result<(JobOutput, u32, Vec<(String, u64)>, Option<TelemetrySampler>), String> {
        // Test knob: widen the window between job start and commit so
        // kill-and-resume tests can reliably interrupt a live campaign.
        if let Some(ms) =
            std::env::var("HSWX_CAMPAIGN_DELAY_MS").ok().and_then(|v| v.parse::<u64>().ok())
        {
            std::thread::sleep(Duration::from_millis(ms));
        }
        // Per-job checkpoint store: sweep points computed before a crash
        // or kill survive under `<out_dir>/.ckpt-<job>` and are replayed
        // bit-exactly on the rerun; `commit` discards the file once the
        // journal holds the finished artifact.
        let checkpoint = Arc::new(CheckpointStore::open(
            self.cfg.out_dir.join(format!(".ckpt-{}", job.id)),
            self.cfg.fsync,
        ));
        let mut last_err = String::from("job never ran");
        for attempt in 0..self.cfg.max_attempts.max(1) {
            let seed = self.cfg.seed ^ (attempt as u64).wrapping_mul(RETRY_SEED_PERTURB);
            let ctx = JobCtx {
                seed,
                degraded,
                checkpoint: Some(Arc::clone(&checkpoint)),
                threads: self.cfg.threads.max(1),
            };
            // The ambient token reaches every `System` the job constructs,
            // including inside nested parallel sweeps; a deadline overrun
            // turns the next walk into a typed Cancelled error. The
            // ambient registry rides along the same way: each simulator
            // drains its counters into it on drop, and a fresh registry
            // per attempt keeps failed attempts from polluting the totals.
            let _watchdog = self.cfg.job_deadline.map(|d| {
                CancelToken::set_ambient(CancelToken::with_deadline(d))
            });
            let registry = Arc::new(MetricsRegistry::new());
            let _metrics = MetricsRegistry::set_ambient(Arc::clone(&registry));
            // Telemetry rides the same ambient pattern: every simulator
            // the job builds samples into a fresh per-attempt hub, so a
            // failed attempt's partial series is discarded with it.
            let hub = self
                .cfg
                .telemetry
                .then(|| Arc::new(TelemetryHub::default()));
            let _telemetry = hub.as_ref().map(|h| TelemetryHub::set_ambient(Arc::clone(h)));
            let t0 = Instant::now();
            match catch_unwind(AssertUnwindSafe(|| (job.run)(&ctx))) {
                Ok(out) => {
                    registry.record("job.wall_ms", t0.elapsed().as_millis() as u64);
                    let sampler =
                        hub.map(|h| h.collect()).filter(|s| !s.is_empty());
                    return Ok((out, attempt + 1, registry.counters_snapshot(), sampler));
                }
                Err(payload) => last_err = panic_message(payload),
            }
        }
        Err(format!(
            "failed after {} attempt{}: {last_err}",
            self.cfg.max_attempts.max(1),
            if self.cfg.max_attempts > 1 { "s" } else { "" }
        ))
    }

    /// Atomically persist a finished job's artifacts and journal entry.
    #[allow(clippy::too_many_arguments)]
    fn commit(
        &self,
        job: &JobSpec,
        output: &JobOutput,
        attempts: u32,
        degraded: bool,
        metrics: Vec<(String, u64)>,
        sampler: &Option<TelemetrySampler>,
        state: &Mutex<BTreeMap<String, JournalEntry>>,
    ) -> Result<JournalEntry, String> {
        for (name, body) in &output.files {
            let path = self.cfg.out_dir.join(name);
            atomic_write(&path, body.as_bytes(), self.cfg.fsync)
                .map_err(|e| format!("{}: {e}", path.display()))?;
        }
        let telemetry = sampler.as_ref().map_or_else(Vec::new, |s| {
            let mut totals: Vec<(String, u64)> = s
                .channel_names()
                .iter()
                .map(|n| (n.to_string(), s.channel_total(n)))
                .collect();
            totals.sort();
            totals
        });
        let entry = JournalEntry {
            digest: digest_output(output),
            attempts,
            degraded,
            files: output.files.iter().map(|(n, _)| n.clone()).collect(),
            metrics,
            telemetry,
        };
        let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
        st.insert(job.id.to_string(), entry.clone());
        self.persist_journal(&st)?;
        // The journal is now the durable record; the mid-job checkpoint
        // has served its purpose.
        let _ = std::fs::remove_file(self.cfg.out_dir.join(format!(".ckpt-{}", job.id)));
        Ok(entry)
    }

    fn persist_journal(&self, entries: &BTreeMap<String, JournalEntry>) -> Result<(), String> {
        let mut text = format!("{JOURNAL_MAGIC} seed={}\n", self.cfg.seed);
        for (id, e) in entries {
            text.push_str(&format!(
                "done {id} digest={:016x} attempts={} degraded={} files={}{}{}\n",
                e.digest,
                e.attempts,
                e.degraded as u8,
                e.files.join(","),
                render_totals("metrics", &e.metrics),
                render_totals("telemetry", &e.telemetry),
            ));
        }
        atomic_write(&self.cfg.journal, text.as_bytes(), self.cfg.fsync)
            .map_err(|e| format!("{}: {e}", self.cfg.journal.display()))
    }

    /// Parse the journal. A missing file is an empty journal; a journal
    /// from a different seed is an error (its digests describe different
    /// runs). Malformed body lines are skipped — the worst outcome of a
    /// lost line is rerunning one deterministic job.
    fn load_journal(&self) -> Result<Vec<(String, JournalEntry)>, String> {
        let text = match std::fs::read_to_string(&self.cfg.journal) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(format!("{}: {e}", self.cfg.journal.display())),
        };
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        let Some(seed_str) = header.strip_prefix(JOURNAL_MAGIC).map(str::trim) else {
            return Err(format!(
                "{}: not a campaign journal (header {header:?})",
                self.cfg.journal.display()
            ));
        };
        let seed: u64 = seed_str.strip_prefix("seed=").and_then(|s| s.parse().ok()).ok_or_else(
            || format!("{}: malformed journal header", self.cfg.journal.display()),
        )?;
        if seed != self.cfg.seed {
            return Err(format!(
                "journal was written by seed {seed}, campaign runs seed {} — \
                 pass --seed {seed} or start a fresh journal",
                self.cfg.seed
            ));
        }
        let mut out = Vec::new();
        for line in lines {
            if let Some(entry) = parse_done_line(line) {
                out.push(entry);
            }
        }
        Ok(out)
    }

    /// Re-verify a journal entry against the bytes on disk.
    fn verify_entry(&self, entry: &JournalEntry) -> bool {
        let mut output = JobOutput::default();
        for name in &entry.files {
            match std::fs::read_to_string(self.cfg.out_dir.join(name)) {
                Ok(body) => output.files.push((name.clone(), body)),
                Err(_) => return false,
            }
        }
        digest_output(&output) == entry.digest
    }

    /// Write `manifest.txt`: one line per committed artifact set, so a
    /// consumer can check campaign completeness without parsing the
    /// journal.
    fn write_manifest(&self, entries: &BTreeMap<String, JournalEntry>) -> Result<(), String> {
        let mut text = String::new();
        for (id, e) in entries {
            text.push_str(&format!(
                "{id} {:016x}{} {}\n",
                e.digest,
                if e.degraded { " degraded" } else { "" },
                e.files.join(" ")
            ));
        }
        // Campaign-wide counter totals, as comments so completeness
        // checkers that read one line per artifact set are unaffected.
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        for e in entries.values() {
            for (name, v) in &e.metrics {
                *totals.entry(name).or_insert(0) += v;
            }
        }
        if !totals.is_empty() {
            text.push_str("# metrics (summed over jobs)\n");
            for (name, v) in &totals {
                text.push_str(&format!("# {name} {v}\n"));
            }
        }
        let mut telemetry: BTreeMap<&str, u64> = BTreeMap::new();
        for e in entries.values() {
            for (name, v) in &e.telemetry {
                *telemetry.entry(name).or_insert(0) += v;
            }
        }
        if !telemetry.is_empty() {
            text.push_str("# telemetry (per-channel totals, summed over jobs)\n");
            for (name, v) in &telemetry {
                text.push_str(&format!("# {name} {v}\n"));
            }
        }
        // Exact reproduction recipe: the command, seed, reference-config
        // digest, and snapshot schema version this campaign ran under.
        // Comment-prefixed so one-line-per-artifact consumers are
        // unaffected.
        text.push_str(&format!(
            "# reproduce: hswx campaign --seed {} --out <dir>  \
             (config digest {:016x}, snapshot schema v{})\n",
            self.cfg.seed,
            hswx_haswell::SystemConfig::e5_2680_v3(hswx_haswell::CoherenceMode::SourceSnoop)
                .digest(),
            hswx_haswell::SYSTEM_SNAPSHOT_SCHEMA,
        ));
        let path = self.cfg.out_dir.join("manifest.txt");
        atomic_write(&path, text.as_bytes(), self.cfg.fsync)
            .map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Order-sensitive FNV-1a digest over artifact names and bytes.
fn digest_output(output: &JobOutput) -> u64 {
    let mut h = fnv1a64(b"hswx-job-artifacts-v1");
    for (name, body) in &output.files {
        h = fnv1a64_extend(h, name.as_bytes());
        h = fnv1a64_extend(h, &[0]);
        h = fnv1a64_extend(h, body.as_bytes());
        h = fnv1a64_extend(h, &[0]);
    }
    h
}

/// Render a named-total snapshot as a ` <key>=name:value,...` journal
/// suffix (empty string when there are no pairs). Names never contain
/// whitespace, commas, or colons, so the encoding is unambiguous.
fn render_totals(key: &str, pairs: &[(String, u64)]) -> String {
    if pairs.is_empty() {
        return String::new();
    }
    let body: Vec<String> = pairs.iter().map(|(n, v)| format!("{n}:{v}")).collect();
    format!(" {key}={}", body.join(","))
}

/// Parse the value side of a ` <key>=name:value,...` suffix. Malformed
/// pairs are dropped rather than failing the whole line.
fn parse_totals(v: &str) -> Vec<(String, u64)> {
    v.split(',')
        .filter_map(|pair| {
            let (n, val) = pair.split_once(':')?;
            Some((n.to_string(), val.parse().ok()?))
        })
        .collect()
}

/// Fold `add` into `totals` (both sorted by name), keeping the sort.
fn add_totals(totals: &mut Vec<(String, u64)>, add: &[(String, u64)]) {
    for (name, v) in add {
        match totals.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => totals[i].1 += v,
            Err(i) => totals.insert(i, (name.clone(), *v)),
        }
    }
}

fn parse_done_line(line: &str) -> Option<(String, JournalEntry)> {
    let mut parts = line.split_whitespace();
    if parts.next()? != "done" {
        return None;
    }
    let id = parts.next()?.to_string();
    let mut digest = None;
    let mut attempts = None;
    let mut degraded = None;
    let mut files = None;
    let mut metrics = Vec::new();
    let mut telemetry = Vec::new();
    for kv in parts {
        let (k, v) = kv.split_once('=')?;
        match k {
            "digest" => digest = u64::from_str_radix(v, 16).ok(),
            "attempts" => attempts = v.parse().ok(),
            "degraded" => degraded = Some(v == "1"),
            "files" => files = Some(v.split(',').map(str::to_string).collect()),
            // Both absent in older journals; malformed pairs are dropped
            // rather than failing the whole line.
            "metrics" => metrics = parse_totals(v),
            "telemetry" => telemetry = parse_totals(v),
            _ => {} // forward compatibility: ignore unknown keys
        }
    }
    Some((
        id,
        JournalEntry {
            digest: digest?,
            attempts: attempts?,
            degraded: degraded?,
            files: files?,
            metrics,
            telemetry,
        },
    ))
}

/// Reject duplicate ids and dangling dependency references up front.
fn validate_deps(jobs: &[JobSpec]) -> Result<(), String> {
    for (i, j) in jobs.iter().enumerate() {
        if jobs[..i].iter().any(|k| k.id == j.id) {
            return Err(format!("duplicate job id `{}`", j.id));
        }
        for d in j.deps {
            if !jobs.iter().any(|k| k.id == *d) {
                return Err(format!("job `{}` depends on unknown job `{d}`", j.id));
            }
        }
    }
    Ok(())
}

/// Select `ids` from `all`, pulling in transitive dependencies, keeping
/// the registry's order. Unknown ids are an error.
pub fn select_jobs(all: &[JobSpec], ids: &[&str]) -> Result<Vec<JobSpec>, String> {
    let mut wanted: Vec<&str> = Vec::new();
    let mut stack: Vec<&str> = ids.to_vec();
    while let Some(id) = stack.pop() {
        let job = all
            .iter()
            .find(|j| j.id == id)
            .ok_or_else(|| format!("unknown job `{id}` (available: {})", job_ids(all)))?;
        if !wanted.contains(&job.id) {
            wanted.push(job.id);
            stack.extend(job.deps);
        }
    }
    Ok(all.iter().filter(|j| wanted.contains(&j.id)).copied().collect())
}

fn job_ids(all: &[JobSpec]) -> String {
    all.iter().map(|j| j.id).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hswx_engine::SimTime;
    use hswx_haswell::{CoherenceMode, System, SystemConfig};
    use hswx_mem::{CoreId, LineAddr};
    use std::path::Path;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("hswx-supervisor-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg_for(dir: &Path) -> SupervisorConfig {
        SupervisorConfig {
            out_dir: dir.to_path_buf(),
            journal: dir.join("campaign.journal"),
            ..SupervisorConfig::default()
        }
    }

    fn ok_job(ctx: &JobCtx) -> JobOutput {
        let body = format!("payload degraded={}\n", ctx.degraded);
        JobOutput { files: vec![("ok.txt".into(), body)] }
    }

    fn dep_job(_ctx: &JobCtx) -> JobOutput {
        JobOutput { files: vec![("dep.txt".into(), "dep\n".into())] }
    }

    fn always_panics(_ctx: &JobCtx) -> JobOutput {
        panic!("deliberate job failure");
    }

    /// Fails on the un-perturbed seed, succeeds on any retry seed.
    fn flaky_job(ctx: &JobCtx) -> JobOutput {
        if ctx.seed == SupervisorConfig::default().seed {
            panic!("flaky first attempt");
        }
        JobOutput { files: vec![("flaky.txt".into(), format!("seed={:x}\n", ctx.seed))] }
    }

    /// Walks forever; only the ambient watchdog can stop it.
    fn wedged_job(_ctx: &JobCtx) -> JobOutput {
        let mut sys = System::new(SystemConfig::e5_2680_v3(CoherenceMode::SourceSnoop));
        let mut t = SimTime::ZERO;
        let mut i = 0u64;
        loop {
            match sys.try_read(CoreId(0), LineAddr(i % 4096), t) {
                Ok(out) => {
                    t = out.done;
                    i += 1;
                }
                Err(e) => panic!("{e}"),
            }
        }
    }

    #[test]
    fn runs_jobs_in_dependency_order_and_journals() {
        let dir = tmp_dir("basic");
        let sup = Supervisor::new(cfg_for(&dir));
        let jobs = [
            JobSpec { id: "child", deps: &["parent"], run: ok_job },
            JobSpec { id: "parent", deps: &[], run: dep_job },
        ];
        let summary = sup.run(&jobs).unwrap();
        assert!(summary.ok(), "{summary}");
        assert_eq!(summary.completed.len(), 2);
        let journal = std::fs::read_to_string(dir.join("campaign.journal")).unwrap();
        assert!(journal.starts_with(JOURNAL_MAGIC), "{journal}");
        assert!(journal.contains("done parent") && journal.contains("done child"));
        assert!(dir.join("manifest.txt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_skips_verified_jobs_and_reruns_tampered_ones() {
        let dir = tmp_dir("resume");
        let jobs = [
            JobSpec { id: "a", deps: &[], run: dep_job },
            JobSpec { id: "b", deps: &[], run: ok_job },
        ];
        let sup = Supervisor::new(cfg_for(&dir));
        assert!(sup.run(&jobs).unwrap().ok());

        let mut cfg = cfg_for(&dir);
        cfg.resume = true;
        let summary = Supervisor::new(cfg.clone()).run(&jobs).unwrap();
        assert!(summary.completed.iter().all(|r| r.resumed), "{summary}");

        // Tamper with one artifact: its digest no longer verifies, so
        // only that job reruns.
        std::fs::write(dir.join("dep.txt"), "corrupted").unwrap();
        let summary = Supervisor::new(cfg).run(&jobs).unwrap();
        let a = summary.completed.iter().find(|r| r.id == "a").unwrap();
        let b = summary.completed.iter().find(|r| r.id == "b").unwrap();
        assert!(!a.resumed && b.resumed, "{summary}");
        assert_eq!(std::fs::read_to_string(dir.join("dep.txt")).unwrap(), "dep\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_refuses_a_journal_from_another_seed() {
        let dir = tmp_dir("seed");
        let jobs = [JobSpec { id: "a", deps: &[], run: dep_job }];
        assert!(Supervisor::new(cfg_for(&dir)).run(&jobs).unwrap().ok());
        let mut cfg = cfg_for(&dir);
        cfg.resume = true;
        cfg.seed ^= 1;
        let err = Supervisor::new(cfg).run(&jobs).unwrap_err();
        assert!(err.contains("seed"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_dependency_blocks_dependents() {
        let dir = tmp_dir("blocked");
        let mut cfg = cfg_for(&dir);
        cfg.max_attempts = 1;
        let jobs = [
            JobSpec { id: "bad", deps: &[], run: always_panics },
            JobSpec { id: "child", deps: &["bad"], run: ok_job },
            JobSpec { id: "indep", deps: &[], run: dep_job },
        ];
        let summary = Supervisor::new(cfg).run(&jobs).unwrap();
        assert_eq!(summary.failed.len(), 1);
        assert!(summary.failed[0].1.contains("deliberate job failure"));
        assert_eq!(summary.blocked, vec!["child".to_string()]);
        assert_eq!(summary.completed.len(), 1, "sibling still ran: {summary}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_retry_perturbs_the_seed() {
        let dir = tmp_dir("retry");
        let jobs = [JobSpec { id: "flaky", deps: &[], run: flaky_job }];
        let summary = Supervisor::new(cfg_for(&dir)).run(&jobs).unwrap();
        assert!(summary.ok(), "{summary}");
        assert_eq!(summary.completed[0].entry.attempts, 2);
        let body = std::fs::read_to_string(dir.join("flaky.txt")).unwrap();
        let expect = SupervisorConfig::default().seed ^ RETRY_SEED_PERTURB;
        assert_eq!(body, format!("seed={expect:x}\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watchdog_deadline_cancels_a_wedged_job() {
        let dir = tmp_dir("watchdog");
        let mut cfg = cfg_for(&dir);
        cfg.max_attempts = 1;
        cfg.job_deadline = Some(Duration::from_millis(40));
        let jobs = [JobSpec { id: "wedged", deps: &[], run: wedged_job }];
        let summary = Supervisor::new(cfg).run(&jobs).unwrap();
        assert_eq!(summary.failed.len(), 1, "{summary}");
        assert!(
            summary.failed[0].1.contains("cancelled"),
            "expected a cancellation, got: {}",
            summary.failed[0].1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_time_budget_degrades_instead_of_dying() {
        let dir = tmp_dir("budget");
        let mut cfg = cfg_for(&dir);
        cfg.time_budget = Some(Duration::ZERO);
        let jobs = [JobSpec { id: "shed", deps: &[], run: ok_job }];
        let summary = Supervisor::new(cfg).run(&jobs).unwrap();
        assert!(summary.ok() && summary.degraded, "{summary}");
        assert!(summary.completed[0].entry.degraded);
        let body = std::fs::read_to_string(dir.join("ok.txt")).unwrap();
        assert_eq!(body, "payload degraded=true\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_lines_round_trip() {
        let entry = JournalEntry {
            digest: 0xdead_beef_0102_0304,
            attempts: 3,
            degraded: true,
            files: vec!["x.txt".into(), "x.csv".into()],
            metrics: vec![("snoop.sent".into(), 42), ("sys.walks".into(), 7)],
            telemetry: vec![("qpi.bytes".into(), 640), ("ring.busy_ps".into(), 9000)],
        };
        let line = format!(
            "done myjob digest={:016x} attempts={} degraded=1 files=x.txt,x.csv{}{}",
            entry.digest,
            entry.attempts,
            render_totals("metrics", &entry.metrics),
            render_totals("telemetry", &entry.telemetry),
        );
        let (id, parsed) = parse_done_line(&line).unwrap();
        assert_eq!(id, "myjob");
        assert_eq!(parsed, entry);
        // Pre-metrics journals parse with empty metrics.
        let legacy = "done old digest=00000000000000ff attempts=1 degraded=0 files=a.csv";
        let (_, old) = parse_done_line(legacy).unwrap();
        assert!(old.metrics.is_empty());
        assert!(parse_done_line("garbage line").is_none());
        assert!(parse_done_line("done only_id").is_none());
    }

    /// Sweep job that memoizes each point through the checkpoint store
    /// and dies after the third fresh computation — a stand-in for a
    /// campaign killed mid-sweep.
    fn sweep_job(ctx: &JobCtx) -> JobOutput {
        let ckpt = ctx.checkpoint.as_ref().expect("supervisor provides a store");
        let mut body = String::new();
        let mut fresh = 0;
        for size in 0u64..8 {
            let key = crate::checkpoint::CheckpointStore::key(&[b"sweep", &size.to_le_bytes()]);
            let v = match ckpt.lookup(key) {
                Some(v) => v,
                None => {
                    fresh += 1;
                    if fresh > 3 && std::env::var("HSWX_TEST_SWEEP_DIES").is_ok() {
                        panic!("killed mid-sweep");
                    }
                    let v = (size as f64).sqrt() + 0.125;
                    ckpt.record(key, v);
                    v
                }
            };
            body.push_str(&format!("{size} {v:.17}\n"));
        }
        JobOutput { files: vec![("sweep.txt".into(), body)] }
    }

    #[test]
    fn killed_sweep_resumes_from_checkpoint_byte_identically() {
        // Reference: uninterrupted run.
        let ref_dir = tmp_dir("ckpt-ref");
        let jobs = [JobSpec { id: "sweep", deps: &[], run: sweep_job }];
        assert!(Supervisor::new(cfg_for(&ref_dir)).run(&jobs).unwrap().ok());
        let reference = std::fs::read(ref_dir.join("sweep.txt")).unwrap();

        // Interrupted run: the job dies after 3 points on every attempt,
        // so the campaign fails — but the checkpoint survives.
        let dir = tmp_dir("ckpt-kill");
        let mut cfg = cfg_for(&dir);
        cfg.max_attempts = 1;
        std::env::set_var("HSWX_TEST_SWEEP_DIES", "1");
        let summary = Supervisor::new(cfg.clone()).run(&jobs).unwrap();
        std::env::remove_var("HSWX_TEST_SWEEP_DIES");
        assert_eq!(summary.failed.len(), 1, "{summary}");
        let ckpt_path = dir.join(".ckpt-sweep");
        assert!(ckpt_path.exists(), "checkpoint must survive the kill");
        assert_eq!(
            crate::checkpoint::CheckpointStore::open(ckpt_path.clone(), false).len(),
            3
        );

        // Resume: remaining points compute, artifact bytes match the
        // uninterrupted run, checkpoint is discarded after commit.
        let summary = Supervisor::new(cfg).run(&jobs).unwrap();
        assert!(summary.ok(), "{summary}");
        assert_eq!(std::fs::read(dir.join("sweep.txt")).unwrap(), reference);
        assert!(!ckpt_path.exists(), "commit discards the checkpoint");
        let _ = std::fs::remove_dir_all(&ref_dir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_carries_a_reproduce_line() {
        let dir = tmp_dir("manifest");
        let jobs = [JobSpec { id: "a", deps: &[], run: dep_job }];
        assert!(Supervisor::new(cfg_for(&dir)).run(&jobs).unwrap().ok());
        let manifest = std::fs::read_to_string(dir.join("manifest.txt")).unwrap();
        let line = manifest
            .lines()
            .find(|l| l.starts_with("# reproduce:"))
            .unwrap_or_else(|| panic!("no reproduce line in {manifest}"));
        assert!(line.contains("--seed"), "{line}");
        assert!(line.contains("config digest"), "{line}");
        assert!(line.contains("snapshot schema v"), "{line}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Drives a small simulator so ambient telemetry has something to see.
    fn sim_job(_ctx: &JobCtx) -> JobOutput {
        let mut sys = System::new(SystemConfig::e5_2680_v3(CoherenceMode::SourceSnoop));
        let mut t = SimTime::ZERO;
        for i in 0..64u64 {
            let out = sys.read(CoreId(0), LineAddr(i % 32), t);
            t = out.done;
        }
        JobOutput { files: vec![("sim.txt".into(), format!("{}\n", sys.stats.snoops_sent))] }
    }

    #[test]
    #[cfg(feature = "trace")]
    fn telemetry_flows_into_journal_manifest_and_summary() {
        let dir = tmp_dir("telemetry");
        let mut cfg = cfg_for(&dir);
        cfg.telemetry = true;
        let jobs = [JobSpec { id: "sim", deps: &[], run: sim_job }];
        let summary = Supervisor::new(cfg.clone()).run(&jobs).unwrap();
        assert!(summary.ok(), "{summary}");
        let report = summary.completed[0].clone();
        assert!(report.sampler.is_some(), "job ran with telemetry but sampled nothing");
        assert!(!report.entry.telemetry.is_empty());
        let totals = summary.telemetry_totals();
        assert!(totals.iter().any(|(n, v)| n == "ring.busy_ps" && *v > 0), "{totals:?}");
        let merged = summary.telemetry_merged().unwrap();
        let entry_ring =
            report.entry.telemetry.iter().find(|(n, _)| n == "ring.busy_ps").unwrap().1;
        assert_eq!(merged.channel_total("ring.busy_ps"), entry_ring);

        // The journal persists the totals, so resume keeps them (but not
        // the full series — only jobs that ran this invocation carry one).
        let journal = std::fs::read_to_string(&cfg.journal).unwrap();
        assert!(journal.contains(" telemetry="), "{journal}");
        cfg.resume = true;
        let resumed = Supervisor::new(cfg).run(&jobs).unwrap();
        assert!(resumed.completed[0].resumed);
        assert_eq!(resumed.completed[0].entry.telemetry, report.entry.telemetry);
        assert!(resumed.telemetry_merged().is_none());
        let manifest = std::fs::read_to_string(dir.join("manifest.txt")).unwrap();
        assert!(manifest.contains("# telemetry"), "{manifest}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_off_leaves_journal_and_reports_clean() {
        let dir = tmp_dir("telemetry-off");
        let jobs = [JobSpec { id: "sim", deps: &[], run: sim_job }];
        let summary = Supervisor::new(cfg_for(&dir)).run(&jobs).unwrap();
        assert!(summary.ok(), "{summary}");
        assert!(summary.completed[0].sampler.is_none());
        assert!(summary.completed[0].entry.telemetry.is_empty());
        assert!(summary.telemetry_merged().is_none());
        let journal = std::fs::read_to_string(dir.join("campaign.journal")).unwrap();
        assert!(!journal.contains("telemetry="), "{journal}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_reaches_done_with_accurate_counts() {
        let dir = tmp_dir("heartbeat");
        let jobs = [
            JobSpec { id: "sim", deps: &[], run: sim_job },
            JobSpec { id: "flaky", deps: &[], run: flaky_job },
        ];
        let summary = Supervisor::new(cfg_for(&dir)).run(&jobs).unwrap();
        assert!(summary.ok(), "{summary}");
        let hb = Heartbeat::read(&dir.join("heartbeat.txt")).unwrap().unwrap();
        assert_eq!(hb.kind, "campaign");
        assert_eq!(hb.status, "done");
        assert_eq!((hb.total, hb.done, hb.failed, hb.inflight), (2, 2, 0, 0));
        assert_eq!(hb.retries, 1, "flaky's extra attempt should count as a retry");
        // sim_job's simulator drained its counters ambiently; the beat
        // folded them into the heartbeat totals.
        assert!(hb.metrics.iter().any(|(n, v)| n == "sys.walks" && *v > 0), "{:?}", hb.metrics);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_reports_failure_status() {
        let dir = tmp_dir("heartbeat-fail");
        let mut cfg = cfg_for(&dir);
        cfg.max_attempts = 1;
        let jobs = [JobSpec { id: "bad", deps: &[], run: always_panics }];
        let summary = Supervisor::new(cfg).run(&jobs).unwrap();
        assert!(!summary.ok());
        let hb = Heartbeat::read(&dir.join("heartbeat.txt")).unwrap().unwrap();
        assert_eq!(hb.status, "failed");
        assert_eq!((hb.done, hb.failed), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn add_totals_merges_sorted_snapshots() {
        let mut totals = vec![("b".to_string(), 2u64)];
        add_totals(&mut totals, &[("a".to_string(), 1), ("b".to_string(), 3)]);
        add_totals(&mut totals, &[("c".to_string(), 9)]);
        assert_eq!(
            totals,
            vec![("a".to_string(), 1), ("b".to_string(), 5), ("c".to_string(), 9)]
        );
    }

    #[test]
    fn select_jobs_pulls_transitive_deps() {
        let all = crate::jobs::registry();
        let picked = select_jobs(&all, &["fig4"]).unwrap();
        let ids: Vec<&str> = picked.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec!["table2", "fig4"]);
        assert!(select_jobs(&all, &["nope"]).is_err());
    }

    #[test]
    fn attempts_counter_is_not_shared_between_jobs() {
        // Two jobs race in the same wave; each gets its own attempt loop.
        static CALLS: AtomicU32 = AtomicU32::new(0);
        fn counting(_ctx: &JobCtx) -> JobOutput {
            CALLS.fetch_add(1, Ordering::Relaxed);
            JobOutput { files: vec![("c.txt".into(), "c\n".into())] }
        }
        let dir = tmp_dir("counter");
        let jobs = [
            JobSpec { id: "c1", deps: &[], run: counting },
            JobSpec { id: "c2", deps: &[], run: counting },
        ];
        let summary = Supervisor::new(cfg_for(&dir)).run(&jobs).unwrap();
        assert!(summary.ok());
        assert_eq!(CALLS.load(Ordering::Relaxed), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
