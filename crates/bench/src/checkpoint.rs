//! Mid-job checkpoint store: crash-safe memoization of per-sweep-point
//! results.
//!
//! The supervisor's journal is whole-job: a campaign killed mid-sweep used
//! to rerun the entire job from scratch on resume. A [`CheckpointStore`]
//! closes that gap. Jobs record each independently-computed sweep point
//! (keyed by a caller-chosen FNV key covering the series label, sweep
//! coordinate, and config digest) as soon as it is known; the store
//! persists the full map through the `hswx-engine` snapshot frame codec
//! via `atomic_write`, so a kill -9 at any instant leaves either the
//! previous checkpoint or the new one — never a torn file.
//!
//! Checkpointed values are **bit-exact** (`f64` payloads travel as raw
//! bits), so a resumed job emits artifacts byte-identical to an
//! uninterrupted run — the supervisor's artifact digests then verify as if
//! nothing had happened. A corrupt or truncated checkpoint file fails
//! closed: it is ignored and the job simply recomputes.

use hswx_engine::snapshot::{SnapReader, SnapWriter, SnapshotError};
use hswx_engine::{atomic_write, fnv1a64, fnv1a64_extend, FxHashMap};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Frame schema for checkpoint files (distinct from the system snapshot
/// schema so the two can never be confused for one another).
pub const CHECKPOINT_SCHEMA: u32 = 0x6350_0001;

/// Crash-safe `key -> f64` memo backed by one snapshot-framed file.
#[derive(Debug)]
pub struct CheckpointStore {
    path: PathBuf,
    fsync: bool,
    entries: Mutex<FxHashMap<u64, u64>>,
}

impl CheckpointStore {
    /// Open (or create) the store at `path`. An unreadable, corrupt, or
    /// wrong-schema file is treated as empty — resuming then recomputes
    /// instead of failing.
    pub fn open(path: PathBuf, fsync: bool) -> Self {
        let entries = std::fs::read(&path)
            .ok()
            .and_then(|bytes| Self::decode(&bytes).ok())
            .unwrap_or_default();
        CheckpointStore { path, fsync, entries: Mutex::new(entries) }
    }

    /// Derive a checkpoint key from identity `parts` (series label, sweep
    /// coordinate, config digest, ...). Parts are length-delimited, so
    /// `["ab","c"]` and `["a","bc"]` never collide.
    pub fn key(parts: &[&[u8]]) -> u64 {
        let mut h = fnv1a64(b"hswx-checkpoint-key-v1");
        for p in parts {
            h = fnv1a64_extend(h, &(p.len() as u64).to_le_bytes());
            h = fnv1a64_extend(h, p);
        }
        h
    }

    /// Previously recorded value for `key`, bit-exact.
    pub fn lookup(&self, key: u64) -> Option<f64> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.get(&key).map(|&bits| f64::from_bits(bits))
    }

    /// Record `value` under `key` and persist the whole store atomically.
    /// Persistence failures are swallowed: a checkpoint is an optimization,
    /// never worth failing the job over.
    pub fn record(&self, key: u64, value: f64) {
        let frame = {
            let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            entries.insert(key, value.to_bits());
            Self::encode(&entries)
        };
        let _ = atomic_write(&self.path, &frame, self.fsync);
    }

    /// Number of recorded sweep points.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Path this store persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Delete the backing file — called after the job's artifacts commit,
    /// when the journal takes over as the durable record.
    pub fn discard(&self) {
        let _ = std::fs::remove_file(&self.path);
    }

    fn encode(entries: &FxHashMap<u64, u64>) -> Vec<u8> {
        let mut sorted: Vec<(u64, u64)> = entries.iter().map(|(&k, &v)| (k, v)).collect();
        sorted.sort_unstable();
        let mut w = SnapWriter::new(CHECKPOINT_SCHEMA);
        w.seq(sorted.len());
        for (k, v) in sorted {
            w.u64(k);
            w.u64(v);
        }
        w.finish()
    }

    fn decode(bytes: &[u8]) -> Result<FxHashMap<u64, u64>, SnapshotError> {
        let mut r = SnapReader::open_expecting(bytes, CHECKPOINT_SCHEMA)?;
        let n = r.seq(16, "checkpoint entries")?;
        let mut entries = FxHashMap::default();
        for _ in 0..n {
            let k = r.u64()?;
            let v = r.u64()?;
            entries.insert(k, v);
        }
        r.expect_end()?;
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hswx-ckpt-{tag}-{}", std::process::id()))
    }

    #[test]
    fn round_trips_bit_exact_values() {
        let path = tmp("roundtrip");
        let store = CheckpointStore::open(path.clone(), false);
        let k1 = CheckpointStore::key(&[b"series a", &64u64.to_le_bytes()]);
        let k2 = CheckpointStore::key(&[b"series b", &64u64.to_le_bytes()]);
        assert_ne!(k1, k2);
        store.record(k1, 21.200000000000003);
        store.record(k2, -0.0);
        drop(store);

        let reopened = CheckpointStore::open(path.clone(), false);
        assert_eq!(reopened.len(), 2);
        assert_eq!(
            reopened.lookup(k1).map(f64::to_bits),
            Some(21.200000000000003f64.to_bits())
        );
        assert_eq!(reopened.lookup(k2).map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(reopened.lookup(CheckpointStore::key(&[b"other"])), None);
        reopened.discard();
        assert!(!path.exists());
    }

    #[test]
    fn key_parts_are_length_delimited() {
        assert_ne!(
            CheckpointStore::key(&[b"ab", b"c"]),
            CheckpointStore::key(&[b"a", b"bc"])
        );
    }

    #[test]
    fn corrupt_files_fail_closed_to_empty() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"not a checkpoint frame").unwrap();
        let store = CheckpointStore::open(path.clone(), false);
        assert!(store.is_empty());
        // Truncated valid frame: also empty.
        let good = CheckpointStore::open(tmp("donor"), false);
        good.record(1, 2.0);
        let bytes = std::fs::read(good.path()).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(CheckpointStore::open(path.clone(), false).is_empty());
        good.discard();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persisted_bytes_are_canonical() {
        // Same entries recorded in different orders → identical files.
        let (pa, pb) = (tmp("canon-a"), tmp("canon-b"));
        let a = CheckpointStore::open(pa.clone(), false);
        let b = CheckpointStore::open(pb.clone(), false);
        a.record(1, 1.5);
        a.record(2, 2.5);
        b.record(2, 2.5);
        b.record(1, 1.5);
        assert_eq!(std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
        a.discard();
        b.discard();
    }
}
