//! Ablation: L3 victim-selection policy vs capacity-region behaviour.
//!
//! With a working set around the L3 capacity, the replacement policy
//! decides how gracefully latency degrades from the 21 ns L3 plateau to
//! the ~97 ns memory plateau: random replacement keeps a proportional
//! fraction of an oversized cyclic working set resident, while (P)LRU
//! evicts exactly what is about to be reused. Note the 20-way L3 is not a
//! power of two, so tree-PLRU uses its oldest-untouched fallback and
//! coincides with true LRU here.

use hswx_engine::SimTime;
use hswx_haswell::microbench::{pointer_chase, Buffer};
use hswx_haswell::placement::{Level, Placement};
use hswx_haswell::report::{Figure, Series};
use hswx_haswell::{CoherenceMode, System, SystemConfig};
use hswx_mem::{CoreId, NodeId, Replacement};

fn run(policy: Replacement, size: u64) -> f64 {
    let mut cfg = SystemConfig::e5_2680_v3(CoherenceMode::SourceSnoop);
    cfg.l3_replacement = policy;
    let mut sys = System::new(cfg);
    let buf = Buffer::on_node_dense(&sys, NodeId(0), size, 0);
    // Two sequential passes warm the L3 to steady state under the policy;
    // the chase then measures the surviving-resident fraction.
    let mut t = Placement::modified(&mut sys, CoreId(0), &buf.lines, Level::L3, SimTime::ZERO);
    for &l in &buf.lines {
        t = sys.read(CoreId(0), l, t).done;
        sys.demote_to_l3(CoreId(0), l, t);
    }
    pointer_chase(&mut sys, CoreId(0), &buf.lines, t, 3).ns_per_access
}

fn main() {
    let sizes: Vec<u64> = [16u64, 24, 28, 30, 32, 36, 48]
        .iter()
        .map(|m| m << 20)
        .collect();
    let mut fig = Figure::new("ablate_replacement", "ns per load around L3 capacity");
    for (label, policy) in [
        ("true LRU", Replacement::Lru),
        ("tree PLRU", Replacement::TreePlru),
        ("random", Replacement::Random),
    ] {
        let mut s = Series::new(label);
        for &size in &sizes {
            s.push(size as f64, run(policy, size));
        }
        fig.add(s);
    }
    print!("{}", fig.to_text());
    hswx_bench::save_csv(&fig, "results");
}
