//! Regenerate paper Table III: L3 and memory read latency across the three
//! coherence configurations, including the COD per-core variation between
//! the first node, and the second node's cores on the first vs second ring.

use hswx_bench::scenarios::LatencyScenario;
use hswx_haswell::placement::{Level, PlacedState};
use hswx_haswell::report::Table;
use hswx_haswell::CoherenceMode::{self, ClusterOnDie, HomeSnoop, SourceSnoop};
use hswx_mem::{CoreId, NodeId};

/// One measurement: state-E data at `level`, homed/placed per `remote`.
fn cell(mode: CoherenceMode, level: Level, measurer: CoreId, home: u8, placer: CoreId) -> f64 {
    LatencyScenario {
        mode,
        placers: vec![placer],
        state: PlacedState::Exclusive,
        level,
        home: NodeId(home),
        measurer,
        size: None,
    }
    .run()
}

fn main() {
    let mut t = Table::new(
        "table3",
        &[
            "case",
            "default",
            "early-snoop-off",
            "cod node0",
            "cod n1 ring0 (c6)",
            "cod n1 ring1 (c8)",
        ],
    );

    // Measuring cores per column (paper: first node; second node cores on
    // the first ring = 6,7; on the second ring = 8-11).
    let cod_cols = [CoreId(0), CoreId(6), CoreId(8)];

    // Local L3: data placed by a *different* core of the same node would
    // need a snoop; Table III's "local" rows are the no-snoop L3 latency
    // (placer = measurer).
    let mut l3_local = vec![
        cell(SourceSnoop, Level::L3, CoreId(0), 0, CoreId(0)),
        cell(HomeSnoop, Level::L3, CoreId(0), 0, CoreId(0)),
    ];
    for &c in &cod_cols {
        let node = if c.0 < 6 { 0 } else { 1 };
        l3_local.push(cell(ClusterOnDie, Level::L3, c, node, c));
    }
    t.row_f("L3 local", &l3_local);

    // Remote L3 (first node of the other socket), state E with stale CV.
    let mut l3_r1 = vec![
        cell(SourceSnoop, Level::L3, CoreId(0), 1, CoreId(12)),
        cell(HomeSnoop, Level::L3, CoreId(0), 1, CoreId(12)),
    ];
    for &c in &cod_cols {
        l3_r1.push(cell(ClusterOnDie, Level::L3, c, 2, CoreId(12)));
    }
    t.row_f("L3 remote 1st node", &l3_r1);

    let mut l3_r2 = vec![f64::NAN, f64::NAN];
    for &c in &cod_cols {
        l3_r2.push(cell(ClusterOnDie, Level::L3, c, 3, CoreId(18)));
    }
    t.row(
        "L3 remote 2nd node",
        l3_r2
            .iter()
            .map(|v| if v.is_nan() { "-".into() } else { format!("{v:.1}") })
            .collect(),
    );

    // Memory rows.
    let mut m_local = vec![
        cell(SourceSnoop, Level::Memory, CoreId(0), 0, CoreId(0)),
        cell(HomeSnoop, Level::Memory, CoreId(0), 0, CoreId(0)),
    ];
    for &c in &cod_cols {
        let node = if c.0 < 6 { 0 } else { 1 };
        m_local.push(cell(ClusterOnDie, Level::Memory, c, node, c));
    }
    t.row_f("memory local", &m_local);

    let mut m_r1 = vec![
        cell(SourceSnoop, Level::Memory, CoreId(0), 1, CoreId(12)),
        cell(HomeSnoop, Level::Memory, CoreId(0), 1, CoreId(12)),
    ];
    for &c in &cod_cols {
        m_r1.push(cell(ClusterOnDie, Level::Memory, c, 2, CoreId(12)));
    }
    t.row_f("memory remote 1st node", &m_r1);

    let mut m_r2 = vec![f64::NAN, f64::NAN];
    for &c in &cod_cols {
        m_r2.push(cell(ClusterOnDie, Level::Memory, c, 3, CoreId(18)));
    }
    t.row(
        "memory remote 2nd node",
        m_r2.iter()
            .map(|v| if v.is_nan() { "-".into() } else { format!("{v:.1}") })
            .collect(),
    );

    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
