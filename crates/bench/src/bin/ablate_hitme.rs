//! Ablation: HitME directory-cache capacity vs the Figure 7 effect.
//!
//! Sweeps the directory cache from disabled through the production 14 KiB
//! (1792 entries) to effectively infinite, on the Fig. 7 workload (node 0
//! reads lines shared with F in node 1, homed in node 2). Shows that the
//! size-dependent memory-forward fast path is *caused by* the directory
//! cache: without it every access broadcasts; with an infinite cache every
//! access takes the fast path regardless of footprint.

use hswx_engine::SimTime;
use hswx_haswell::microbench::{pointer_chase, Buffer};
use hswx_haswell::placement::{Level, Placement};
use hswx_haswell::report::{Figure, Series};
use hswx_haswell::{CoherenceMode, System, SystemConfig};
use hswx_mem::NodeId;

fn run(entries: Option<u32>, size: u64) -> f64 {
    let mut cfg = SystemConfig::e5_2680_v3(CoherenceMode::ClusterOnDie);
    match entries {
        None => cfg.hitme_enabled = false,
        Some(n) => cfg.hitme_entries = n,
    }
    let mut sys = System::new(cfg);
    let home = NodeId(2);
    let buf = Buffer::on_node(&sys, home, size, 0);
    let home_core = sys.topo.cores_of_node(home)[0];
    let fwd_core = sys.topo.cores_of_node(NodeId(1))[0];
    let t = Placement::shared(&mut sys, &[home_core, fwd_core], &buf.lines, Level::L3, SimTime::ZERO);
    let measurer = sys.topo.cores_of_node(NodeId(0))[0];
    pointer_chase(&mut sys, measurer, &buf.lines, t, 99).ns_per_access
}

fn main() {
    let sizes: Vec<u64> =
        [64u64, 128, 256, 512, 1024, 2048, 4096].iter().map(|k| k * 1024).collect();
    let variants: [(&str, Option<u32>); 4] = [
        ("no HitME", None),
        ("14 KiB (1792)", Some(1792)),
        ("112 KiB (14336)", Some(14336)),
        ("infinite", Some(1 << 20)),
    ];
    let mut fig = Figure::new("ablate_hitme", "ns per load (F:1 H:2 shared lines)");
    for (label, entries) in variants {
        let mut s = Series::new(label);
        for &size in &sizes {
            s.push(size as f64, run(entries, size));
        }
        fig.add(s);
    }
    print!("{}", fig.to_text());
    hswx_bench::save_csv(&fig, "results");
}
