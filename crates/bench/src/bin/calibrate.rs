//! Calibration report: every paper anchor vs the simulator.
//!
//! ```text
//! cargo run -p hswx-bench --release --bin calibrate [--latency|--bandwidth]
//! ```

use hswx_bench::{bandwidth_anchors, latency_anchors, Anchor};

fn print(section: &str, anchors: &[Anchor]) {
    println!("== {section} ==");
    println!("{:<38} {:>9} {:>9} {:>8}", "scenario", "paper", "sim", "err%");
    let mut worst: f64 = 0.0;
    for a in anchors {
        println!(
            "{:<38} {:>9.1} {:>9.1} {:>7.1}%",
            a.name,
            a.paper,
            a.sim,
            a.rel_err() * 100.0
        );
        worst = worst.max(a.rel_err().abs());
    }
    println!("worst |err| = {:.1}%\n", worst * 100.0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("--all");
    // An unknown selector used to print *nothing* and exit 0 — a silently
    // empty calibration report. Reject it instead.
    if !matches!(which, "--all" | "--latency" | "--bandwidth") {
        eprintln!("error: unknown selector {which} (expected --latency, --bandwidth, or --all)");
        std::process::exit(2);
    }
    if which == "--latency" || which == "--all" {
        print("latency anchors (ns)", &latency_anchors());
    }
    if which == "--bandwidth" || which == "--all" {
        print("bandwidth anchors (GB/s)", &bandwidth_anchors());
    }
}
