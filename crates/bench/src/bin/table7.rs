//! Regenerate paper Table VII: memory bandwidth scaling with concurrently
//! reading/writing cores, source snoop vs home snoop. The headline shape:
//! local reads saturate ~63 GB/s in both modes; writes peak around five
//! cores and settle near 26 GB/s; remote reads are tracker-starved under
//! source snooping (~17 GB/s) but QPI-limited (~31 GB/s) under home
//! snooping.

use hswx_bench::scenarios::{aggregate_read, aggregate_write};
use hswx_haswell::placement::Level;
use hswx_haswell::report::Table;
use hswx_haswell::CoherenceMode::{HomeSnoop, SourceSnoop};
use hswx_mem::{CoreId, NodeId};

fn main() {
    let counts = [1usize, 2, 4, 5, 8, 12];
    let mut t = Table::new(
        "table7",
        &["case", "1", "2", "4", "5", "8", "12"],
    );

    let row = |f: &dyn Fn(&[CoreId]) -> f64| -> Vec<f64> {
        counts
            .iter()
            .map(|&n| {
                let cores: Vec<CoreId> = (0..n as u16).map(CoreId).collect();
                f(&cores)
            })
            .collect()
    };

    t.row_f(
        "local read, source snoop",
        &row(&|c| aggregate_read(SourceSnoop, c, |_| NodeId(0), Level::Memory, 8 << 20)),
    );
    t.row_f(
        "local read, home snoop",
        &row(&|c| aggregate_read(HomeSnoop, c, |_| NodeId(0), Level::Memory, 8 << 20)),
    );
    t.row_f(
        "local write, source snoop",
        &row(&|c| aggregate_write(SourceSnoop, c, |_| NodeId(0), 4 << 20)),
    );
    t.row_f(
        "remote read, source snoop",
        &row(&|c| aggregate_read(SourceSnoop, c, |_| NodeId(1), Level::Memory, 8 << 20)),
    );
    t.row_f(
        "remote read, home snoop",
        &row(&|c| aggregate_read(HomeSnoop, c, |_| NodeId(1), Level::Memory, 8 << 20)),
    );

    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
