//! Regenerate paper Table I: Sandy Bridge vs Haswell micro-architecture.

use hswx_haswell::report::Table;
use hswx_haswell::spec::table1_uarch_comparison;

fn main() {
    let mut t = Table::new("table1", &["feature", "Sandy Bridge", "Haswell"]);
    for row in table1_uarch_comparison() {
        t.row(row.feature, vec![row.sandy_bridge.to_string(), row.haswell.to_string()]);
    }
    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
