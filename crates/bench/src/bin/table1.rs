//! Regenerate paper Table I: Sandy Bridge vs Haswell micro-architecture.
//!
//! The table itself is built by [`hswx_bench::jobs::table1`], shared with
//! the supervised `hswx campaign` runtime.

fn main() {
    let t = hswx_bench::jobs::table1();
    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
