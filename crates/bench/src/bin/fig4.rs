//! Regenerate paper Figure 4: memory read latency vs data-set size in the
//! default (source snoop) configuration — local hierarchy, another core in
//! the same NUMA node, and the other socket, for Modified / Exclusive /
//! Shared cache lines.

use hswx_bench::scenarios::latency_curve;
use hswx_haswell::placement::PlacedState::{Exclusive, Modified, Shared};
use hswx_haswell::report::{sweep_sizes, Figure, Series};
use hswx_haswell::CoherenceMode::SourceSnoop;
use hswx_mem::{CoreId, NodeId};

fn main() {
    let sizes = sweep_sizes();
    let c0 = CoreId(0);
    let c1 = CoreId(1);
    let c2 = CoreId(2);
    let c12 = CoreId(12);
    let c13 = CoreId(13);
    let mut fig = Figure::new("fig4", "ns per load");
    let mut add = |label: &str, pts: Vec<(f64, f64)>| {
        let mut s = Series::new(label);
        for (x, y) in pts {
            s.push(x, y);
        }
        fig.add(s);
    };

    // Local hierarchy (placer = measurer).
    add("local M", latency_curve(SourceSnoop, &[c0], Modified, NodeId(0), c0, &sizes));
    add("local E", latency_curve(SourceSnoop, &[c0], Exclusive, NodeId(0), c0, &sizes));
    // Within NUMA node (placer core 1, measurer core 0).
    add("node M", latency_curve(SourceSnoop, &[c1], Modified, NodeId(0), c0, &sizes));
    add("node E", latency_curve(SourceSnoop, &[c1], Exclusive, NodeId(0), c0, &sizes));
    add("node S", latency_curve(SourceSnoop, &[c1, c2], Shared, NodeId(0), c0, &sizes));
    // Other NUMA node, 1 QPI hop (placer socket 1, data homed there).
    add("remote M", latency_curve(SourceSnoop, &[c12], Modified, NodeId(1), c0, &sizes));
    add("remote E", latency_curve(SourceSnoop, &[c12], Exclusive, NodeId(1), c0, &sizes));
    add("remote S", latency_curve(SourceSnoop, &[c12, c13], Shared, NodeId(1), c0, &sizes));

    print!("{}", fig.to_text());
    hswx_bench::save_csv(&fig, "results");
}
