//! Regenerate paper Figure 4: memory read latency vs data-set size in the
//! default (source snoop) configuration — local hierarchy, another core in
//! the same NUMA node, and the other socket, for Modified / Exclusive /
//! Shared cache lines.
//!
//! The figure itself is built by [`hswx_bench::jobs::fig4`], shared with
//! the supervised `hswx campaign` runtime.

use hswx_haswell::report::sweep_sizes;

fn main() {
    let fig = hswx_bench::jobs::fig4(&sweep_sizes());
    print!("{}", fig.to_text());
    hswx_bench::save_csv(&fig, "results");
}
