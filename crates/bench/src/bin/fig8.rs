//! Regenerate paper Figure 8: single-threaded memory read bandwidth vs
//! data-set size in the default configuration — AVX vs SSE loads on the
//! local hierarchy, plus core-to-core and cross-socket transfers for
//! Modified and Exclusive lines.

use hswx_bench::scenarios::bandwidth_curve;
use hswx_haswell::microbench::LoadWidth::{Avx256, Sse128};
use hswx_haswell::placement::PlacedState::{Exclusive, Modified};
use hswx_haswell::report::{sweep_sizes, Figure, Series};
use hswx_haswell::CoherenceMode::SourceSnoop;
use hswx_mem::{CoreId, NodeId};

fn main() {
    let sizes = sweep_sizes();
    let c0 = CoreId(0);
    let c1 = CoreId(1);
    let c12 = CoreId(12);
    let mut fig = Figure::new("fig8", "GB/s");
    let mut add = |label: &str, pts: Vec<(f64, f64)>| {
        let mut s = Series::new(label);
        for (x, y) in pts {
            s.push(x, y);
        }
        fig.add(s);
    };

    add("local AVX", bandwidth_curve(SourceSnoop, &[c0], Modified, NodeId(0), c0, Avx256, &sizes));
    add("local SSE", bandwidth_curve(SourceSnoop, &[c0], Modified, NodeId(0), c0, Sse128, &sizes));
    add("node M", bandwidth_curve(SourceSnoop, &[c1], Modified, NodeId(0), c0, Avx256, &sizes));
    add("node E", bandwidth_curve(SourceSnoop, &[c1], Exclusive, NodeId(0), c0, Avx256, &sizes));
    add("remote M", bandwidth_curve(SourceSnoop, &[c12], Modified, NodeId(1), c0, Avx256, &sizes));
    add("remote E", bandwidth_curve(SourceSnoop, &[c12], Exclusive, NodeId(1), c0, Avx256, &sizes));

    print!("{}", fig.to_text());
    hswx_bench::save_csv(&fig, "results");
}
