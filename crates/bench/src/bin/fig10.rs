//! Regenerate paper Figure 10: coherence protocol configuration vs
//! application performance — SPEC OMP2012 and SPEC MPI2007 proxies,
//! runtime normalized to the default (source snoop) configuration.
//!
//! Paper shape to reproduce: OMP within ±2% under home snoop except
//! 362.fma3d / 371.applu331 (~5% faster); those two degrade under COD (up
//! to +23% for applu331) while no OMP code benefits much; MPI is uniform —
//! slightly slower without Early Snoop, mostly faster with COD.

use hswx_haswell::report::Table;
use hswx_workloads::{mpi2007_proxies, omp2012_proxies};

fn main() {
    // A typo'd count must not silently fall back to the default: that
    // regenerates the figure with the wrong sampling and nobody notices.
    let accesses = match std::env::args().nth(1) {
        None => 4000usize,
        Some(s) => match s.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("error: bad accesses count {s:?} (usage: fig10 [ACCESSES])");
                std::process::exit(2);
            }
        },
    };

    let mut t = Table::new(
        "fig10",
        &["application", "source snoop", "home snoop", "COD"],
    );
    for (suite, apps) in [
        ("OMP2012", omp2012_proxies()),
        ("MPI2007", mpi2007_proxies()),
    ] {
        for app in apps {
            let r = hswx_workloads::proxy::relative_runtimes(&app, accesses, 0xF16);
            t.row(
                format!("{suite} {}", app.name),
                vec![
                    format!("{:.3}", r[0]),
                    format!("{:.3}", r[1]),
                    format!("{:.3}", r[2]),
                ],
            );
        }
    }
    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
