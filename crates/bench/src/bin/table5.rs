//! Regenerate paper Table V: COD-mode *memory* latency from a core in
//! node 0 to data that had been shared by multiple cores and has since been
//! evicted from all L3 caches. Off-diagonal cells pay the stale
//! `SnoopAll` in-memory-directory broadcast; the diagonal (shared only
//! within the home node) stays `RemoteInvalid` and needs no broadcast.

use hswx_bench::scenarios::{first_core_of, nth_core_of, LatencyScenario};
use hswx_haswell::placement::{Level, PlacedState};
use hswx_haswell::report::Table;
use hswx_haswell::CoherenceMode::ClusterOnDie;
use hswx_mem::NodeId;

fn main() {
    let measurer = first_core_of(ClusterOnDie, 0);
    let mut t = Table::new("table5", &["F \\ H", "node0", "node1", "node2", "node3"]);
    for f in 0..4u8 {
        let mut row = Vec::new();
        for h in 0..4u8 {
            let home_core = first_core_of(ClusterOnDie, h);
            let fwd_core = if f == h {
                nth_core_of(ClusterOnDie, h, 1)
            } else {
                first_core_of(ClusterOnDie, f)
            };
            let ns = LatencyScenario {
                mode: ClusterOnDie,
                placers: vec![home_core, fwd_core],
                state: PlacedState::Shared,
                level: Level::Memory,
                home: NodeId(h),
                measurer,
                size: Some(32 * 1024 * 1024),
            }
            .run();
            row.push(ns);
        }
        t.row_f(format!("node{f}"), &row);
    }
    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
