//! Regenerate paper Table VIII: memory read bandwidth scaling in COD mode —
//! node-local plus node0→node1/2/3 transfers at 1–6 cores per node.

use hswx_bench::scenarios::{aggregate_read, nth_core_of};
use hswx_haswell::placement::Level;
use hswx_haswell::report::Table;
use hswx_haswell::CoherenceMode::ClusterOnDie;
use hswx_mem::{CoreId, NodeId};

fn main() {
    let counts = [1usize, 2, 3, 4, 6];
    let mut t = Table::new("table8", &["source", "1", "2", "3", "4", "6"]);

    let row = |home: u8| -> Vec<f64> {
        counts
            .iter()
            .map(|&n| {
                let cores: Vec<CoreId> =
                    (0..n).map(|i| nth_core_of(ClusterOnDie, 0, i)).collect();
                aggregate_read(ClusterOnDie, &cores, |_| NodeId(home), Level::Memory, 8 << 20)
            })
            .collect()
    };

    t.row_f("local memory (node0)", &row(0));
    t.row_f("node0 <- node1", &row(1));
    t.row_f("node0 <- node2", &row(2));
    t.row_f("node0 <- node3", &row(3));

    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
