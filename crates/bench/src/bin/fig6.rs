//! Regenerate paper Figure 6: read latency in Cluster-on-Die mode — local,
//! within the NUMA node, the other on-chip node (1 hop), and the remote
//! socket's nodes at 1/2/3 hops, for Modified and Exclusive lines.

use hswx_bench::scenarios::{first_core_of, latency_curve, nth_core_of};
use hswx_haswell::placement::PlacedState::{Exclusive, Modified};
use hswx_haswell::report::{sweep_sizes, Figure, Series};
use hswx_haswell::CoherenceMode::ClusterOnDie;
use hswx_mem::NodeId;

fn main() {
    let sizes = sweep_sizes();
    let n0 = first_core_of(ClusterOnDie, 0);
    let n0b = nth_core_of(ClusterOnDie, 0, 1);
    let n1 = first_core_of(ClusterOnDie, 1);
    let n2 = first_core_of(ClusterOnDie, 2);
    let n3 = first_core_of(ClusterOnDie, 3);

    let mut fig = Figure::new("fig6", "ns per load");
    let mut add = |label: &str, pts: Vec<(f64, f64)>| {
        let mut s = Series::new(label);
        for (x, y) in pts {
            s.push(x, y);
        }
        fig.add(s);
    };

    add("local M", latency_curve(ClusterOnDie, &[n0], Modified, NodeId(0), n0, &sizes));
    add("node M", latency_curve(ClusterOnDie, &[n0b], Modified, NodeId(0), n0, &sizes));
    add("node E", latency_curve(ClusterOnDie, &[n0b], Exclusive, NodeId(0), n0, &sizes));
    add("1hop-chip M", latency_curve(ClusterOnDie, &[n1], Modified, NodeId(1), n0, &sizes));
    add("1hop-chip E", latency_curve(ClusterOnDie, &[n1], Exclusive, NodeId(1), n0, &sizes));
    add("1hop-QPI M", latency_curve(ClusterOnDie, &[n2], Modified, NodeId(2), n0, &sizes));
    add("1hop-QPI E", latency_curve(ClusterOnDie, &[n2], Exclusive, NodeId(2), n0, &sizes));
    add("2hops M", latency_curve(ClusterOnDie, &[n3], Modified, NodeId(3), n0, &sizes));
    add("2hops E", latency_curve(ClusterOnDie, &[n3], Exclusive, NodeId(3), n0, &sizes));
    add("3hops M", latency_curve(ClusterOnDie, &[n3], Modified, NodeId(3), n1, &sizes));
    add("3hops E", latency_curve(ClusterOnDie, &[n3], Exclusive, NodeId(3), n1, &sizes));

    print!("{}", fig.to_text());
    hswx_bench::save_csv(&fig, "results");
}
