//! Beyond-paper experiment: non-temporal (streaming) stores.
//!
//! Classic STREAM-benchmark trade-off on the simulated machine: regular
//! stores pay a read-for-ownership plus an eventual writeback (two DRAM
//! transfers per line) but are *absorbed by the L3* while the dirty
//! footprint fits; `movnt` stores bypass the caches and always drain to
//! memory. So at low core counts (footprint < L3) RFO stores win or tie,
//! and once the aggregate dirty data overflows the L3 the NT path pulls
//! ahead (~1.7x at 12 cores) by halving DRAM traffic.

use hswx_engine::SimTime;
use hswx_haswell::microbench::{
    stream_write_multi, stream_write_nt_multi, Buffer, LoadWidth,
};
use hswx_haswell::report::Table;
use hswx_haswell::{CoherenceMode, System, SystemConfig};
use hswx_mem::{CoreId, LineAddr, NodeId};

fn run(n_cores: usize, nt: bool) -> f64 {
    let mut sys = System::new(SystemConfig::e5_2680_v3(CoherenceMode::SourceSnoop));
    let cores: Vec<CoreId> = (0..n_cores as u16).map(CoreId).collect();
    let bufs: Vec<Buffer> = cores
        .iter()
        .enumerate()
        .map(|(i, _)| Buffer::on_node_dense(&sys, NodeId(0), 4 << 20, i as u64))
        .collect();
    let streams: Vec<(CoreId, &[LineAddr])> = cores
        .iter()
        .zip(&bufs)
        .map(|(&c, b)| (c, b.lines.as_slice()))
        .collect();
    if nt {
        stream_write_nt_multi(&mut sys, &streams, LoadWidth::Avx256, SimTime::ZERO).gb_s
    } else {
        stream_write_multi(&mut sys, &streams, LoadWidth::Avx256, SimTime::ZERO).gb_s
    }
}

fn main() {
    let mut t = Table::new("ablate_nt", &["cores", "RFO stores", "NT stores", "speedup"]);
    for n in [1usize, 2, 4, 8, 12] {
        let rfo = run(n, false);
        let nt = run(n, true);
        t.row(
            format!("{n}"),
            vec![format!("{rfo:.1}"), format!("{nt:.1}"), format!("{:.2}x", nt / rfo)],
        );
    }
    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
