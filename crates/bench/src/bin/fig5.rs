//! Regenerate paper Figure 5: source snoop vs home snoop read latency for
//! exclusive-state data (local hierarchy, remote cache, and memory).

use hswx_bench::scenarios::latency_curve;
use hswx_haswell::placement::PlacedState::Exclusive;
use hswx_haswell::report::{sweep_sizes, Figure, Series};
use hswx_haswell::CoherenceMode::{HomeSnoop, SourceSnoop};
use hswx_mem::{CoreId, NodeId};

fn main() {
    let sizes = sweep_sizes();
    let c0 = CoreId(0);
    let c12 = CoreId(12);
    let mut fig = Figure::new("fig5", "ns per load");
    let mut add = |label: &str, pts: Vec<(f64, f64)>| {
        let mut s = Series::new(label);
        for (x, y) in pts {
            s.push(x, y);
        }
        fig.add(s);
    };

    add("source local", latency_curve(SourceSnoop, &[c0], Exclusive, NodeId(0), c0, &sizes));
    add("home   local", latency_curve(HomeSnoop, &[c0], Exclusive, NodeId(0), c0, &sizes));
    add("source remote", latency_curve(SourceSnoop, &[c12], Exclusive, NodeId(1), c0, &sizes));
    add("home   remote", latency_curve(HomeSnoop, &[c12], Exclusive, NodeId(1), c0, &sizes));

    print!("{}", fig.to_text());
    hswx_bench::save_csv(&fig, "results");
}
