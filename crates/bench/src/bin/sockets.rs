//! Beyond-paper experiment: snoop-mode scaling with socket count.
//!
//! The paper motivates directory support with "broadcasts quickly become
//! expensive for an increasing number of nodes" (§IV-A) and predicts that
//! single-chip NUMA + directories "will probably become standard". This
//! experiment runs the same local-memory probe on 2- and 4-socket systems
//! and counts coherence traffic: under source snooping every L3 miss
//! broadcasts to all peer caching agents, so snoops per read and the
//! latency floor grow with the socket count, while the COD directory keeps
//! both flat — the quantitative version of the paper's argument.

use hswx_engine::SimTime;
use hswx_haswell::microbench::{pointer_chase, Buffer};
use hswx_haswell::placement::{Level, Placement};
use hswx_haswell::report::Table;
use hswx_haswell::{CoherenceMode, System, SystemConfig};
use hswx_mem::NodeId;

fn probe(sockets: u8, mode: CoherenceMode) -> (f64, f64, f64) {
    let mut cfg = SystemConfig::e5_2680_v3(mode);
    cfg.sockets = sockets;
    let mut sys = System::new(cfg);
    let c0 = sys.topo.cores_of_node(NodeId(0))[0];
    // Local memory latency.
    let buf = Buffer::on_node(&sys, NodeId(0), 32 << 20, 0);
    let t = Placement::exclusive(&mut sys, c0, &buf.lines, Level::Memory, SimTime::ZERO);
    sys.reset_stats();
    let m = pointer_chase(&mut sys, c0, &buf.lines, t, 9);
    let snoops_per_read = sys.stats.snoops_sent as f64 / m.samples as f64;
    // Remote memory latency (to the last socket's first node).
    let far = NodeId(sys.topo.n_nodes() - if mode.cod() { 2 } else { 1 });
    let far_core = sys.topo.cores_of_node(far)[0];
    let buf2 = Buffer::on_node(&sys, far, 32 << 20, 1);
    let t = Placement::exclusive(&mut sys, far_core, &buf2.lines, Level::Memory, m.finished);
    let m2 = pointer_chase(&mut sys, c0, &buf2.lines, t, 9);
    (m.ns_per_access, m2.ns_per_access, snoops_per_read)
}

fn main() {
    let mut t = Table::new(
        "sockets",
        &["system", "local mem ns", "remote mem ns", "snoops/read"],
    );
    for sockets in [2u8, 4] {
        for mode in CoherenceMode::all() {
            let (local, remote, snoops) = probe(sockets, mode);
            t.row(
                format!("{sockets}S {}", mode.label()),
                vec![
                    format!("{local:.1}"),
                    format!("{remote:.1}"),
                    format!("{snoops:.2}"),
                ],
            );
        }
    }
    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
