//! Regenerate paper Figure 9: single-threaded read bandwidth for *shared*
//! cache lines. When the Forward copy lives in the reading core's node,
//! private-cache hits run at full speed; when it lives in the other socket,
//! every L1/L2 hit is throttled to L3 bandwidth by the forward-state
//! reclaim notification the paper deduces in §VI-C/§VII-A.

use hswx_bench::scenarios::bandwidth_curve;
use hswx_haswell::microbench::LoadWidth::Avx256;
use hswx_haswell::placement::PlacedState::Shared;
use hswx_haswell::report::{sweep_sizes, Figure, Series};
use hswx_haswell::CoherenceMode::SourceSnoop;
use hswx_mem::{CoreId, NodeId};

fn main() {
    let sizes = sweep_sizes();
    let c0 = CoreId(0);
    let c12 = CoreId(12);
    let c13 = CoreId(13);
    let mut fig = Figure::new("fig9", "GB/s");
    let mut add = |label: &str, pts: Vec<(f64, f64)>| {
        let mut s = Series::new(label);
        for (x, y) in pts {
            s.push(x, y);
        }
        fig.add(s);
    };

    // Measurer participates in the sharing; access order decides who ends
    // up with the Forward copy (the last reader).
    add(
        "shared, F local",
        bandwidth_curve(SourceSnoop, &[c12, c0], Shared, NodeId(0), c0, Avx256, &sizes),
    );
    add(
        "shared, F remote",
        bandwidth_curve(SourceSnoop, &[c0, c12], Shared, NodeId(0), c0, Avx256, &sizes),
    );
    // Shared data homed and forwarded entirely in the remote socket.
    add(
        "shared, remote L3",
        bandwidth_curve(SourceSnoop, &[c12, c13], Shared, NodeId(1), c0, Avx256, &sizes),
    );

    print!("{}", fig.to_text());
    hswx_bench::save_csv(&fig, "results");
}
