//! Ablation: the asymmetric 8+4 ring split vs per-core COD performance.
//!
//! The paper (§VI-C) attributes COD's per-core latency variation to the
//! asymmetrical chip layout being mapped onto a balanced NUMA topology.
//! This binary measures every core's local L3 and local memory latency in
//! COD mode, making the three performance classes directly visible:
//! node 0 (all cores on ring 0), node 1's cores 6-7 (ring 0, far from
//! their node's resources), and node 1's cores 8-11 (ring 1).

use hswx_bench::scenarios::LatencyScenario;
use hswx_haswell::placement::{Level, PlacedState};
use hswx_haswell::report::Table;
use hswx_haswell::CoherenceMode::{ClusterOnDie, SourceSnoop};
use hswx_mem::{CoreId, NodeId};

fn main() {
    let mut t = Table::new(
        "ablate_rings",
        &["core", "node", "cod L3 ns", "cod mem ns", "default L3 ns", "default mem ns"],
    );
    for c in 0..12u16 {
        let core = CoreId(c);
        let node = if c < 6 { 0u8 } else { 1 };
        let lat = |mode, level, home: u8| {
            LatencyScenario {
                mode,
                placers: vec![core],
                state: PlacedState::Exclusive,
                level,
                home: NodeId(home),
                measurer: core,
                size: None,
            }
            .run()
        };
        t.row(
            format!("core{c}"),
            vec![
                format!("node{node}"),
                format!("{:.1}", lat(ClusterOnDie, Level::L3, node)),
                format!("{:.1}", lat(ClusterOnDie, Level::Memory, node)),
                format!("{:.1}", lat(SourceSnoop, Level::L3, 0)),
                format!("{:.1}", lat(SourceSnoop, Level::Memory, 0)),
            ],
        );
    }
    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
