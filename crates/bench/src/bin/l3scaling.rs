//! Regenerate the §VII-B aggregate L3 scaling result: read bandwidth grows
//! almost linearly from 26.2 GB/s (1 core) to ~278 GB/s (12 cores); write
//! bandwidth from ~15 to ~161 GB/s. Also prints the per-node COD numbers
//! (~154 GB/s read per node).

use hswx_bench::scenarios::nth_core_of;
use hswx_engine::SimTime;
use hswx_haswell::microbench::{stream_read_multi, stream_write_multi, Buffer, LoadWidth};
use hswx_haswell::placement::{Level, Placement};
use hswx_haswell::report::Table;
use hswx_haswell::CoherenceMode::{ClusterOnDie, SourceSnoop};
use hswx_haswell::{CoherenceMode, System, SystemConfig};
use hswx_mem::{CoreId, LineAddr};

fn l3_aggregate(mode: CoherenceMode, cores: &[CoreId], write: bool) -> f64 {
    let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
    let bufs: Vec<Buffer> = cores
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let node = sys.topo.node_of_core(c);
            Buffer::on_node(&sys, node, 1 << 20, i as u64)
        })
        .collect();
    let mut t = SimTime::ZERO;
    for (i, b) in bufs.iter().enumerate() {
        t = Placement::modified(&mut sys, cores[i], &b.lines, Level::L3, t);
    }
    let streams: Vec<(CoreId, &[LineAddr])> = cores
        .iter()
        .zip(&bufs)
        .map(|(&c, b)| (c, b.lines.as_slice()))
        .collect();
    if write {
        stream_write_multi(&mut sys, &streams, LoadWidth::Avx256, t).gb_s
    } else {
        stream_read_multi(&mut sys, &streams, LoadWidth::Avx256, t).gb_s
    }
}

fn main() {
    let counts = [1usize, 2, 4, 6, 8, 10, 12];
    let mut t = Table::new("l3scaling", &["case", "1", "2", "4", "6", "8", "10", "12"]);

    let reads: Vec<f64> = counts
        .iter()
        .map(|&n| {
            let cores: Vec<CoreId> = (0..n as u16).map(CoreId).collect();
            l3_aggregate(SourceSnoop, &cores, false)
        })
        .collect();
    t.row_f("L3 read, source snoop", &reads);

    let writes: Vec<f64> = counts
        .iter()
        .map(|&n| {
            let cores: Vec<CoreId> = (0..n as u16).map(CoreId).collect();
            l3_aggregate(SourceSnoop, &cores, true)
        })
        .collect();
    t.row_f("L3 write, source snoop", &writes);

    // COD: one node's six cores (paper: 154 GB/s read / 94 GB/s write).
    let node0: Vec<CoreId> = (0..6).map(|i| nth_core_of(ClusterOnDie, 0, i)).collect();
    let cod_read = l3_aggregate(ClusterOnDie, &node0, false);
    let cod_write = l3_aggregate(ClusterOnDie, &node0, true);
    t.row(
        "COD per-node (6 cores)",
        vec![format!("read {cod_read:.0}"), format!("write {cod_write:.0}"),
             "-".into(), "-".into(), "-".into(), "-".into(), "-".into()],
    );

    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
