//! Ablation: L2 streamer prefetching vs single-core streaming bandwidth.
//!
//! With the streamer off, memory-level parallelism falls back to the ten
//! line-fill buffers, costing ~40% of single-core DRAM bandwidth — the
//! design reason Intel ships the streamer on by default.

use hswx_engine::SimTime;
use hswx_haswell::microbench::{stream_read, Buffer, LoadWidth};
use hswx_haswell::placement::{Level, Placement};
use hswx_haswell::report::Table;
use hswx_haswell::{CoherenceMode, System, SystemConfig};
use hswx_mem::{CoreId, NodeId};

fn run(prefetch: bool, level: Level, size: u64, home: u8) -> f64 {
    let mut cfg = SystemConfig::e5_2680_v3(CoherenceMode::SourceSnoop);
    cfg.prefetch = prefetch;
    let mut sys = System::new(cfg);
    let buf = Buffer::on_node(&sys, NodeId(home), size, 0);
    let placer = if home == 0 { CoreId(0) } else { CoreId(12) };
    let t = Placement::exclusive(&mut sys, placer, &buf.lines, level, SimTime::ZERO);
    stream_read(&mut sys, CoreId(0), &buf.lines, LoadWidth::Avx256, t).gb_s
}

fn main() {
    let mut t = Table::new("ablate_prefetch", &["case", "streamer on", "streamer off"]);
    t.row_f(
        "local L3 read (GB/s)",
        &[run(true, Level::L3, 1 << 20, 0), run(false, Level::L3, 1 << 20, 0)],
    );
    t.row_f(
        "local memory read (GB/s)",
        &[run(true, Level::Memory, 64 << 20, 0), run(false, Level::Memory, 64 << 20, 0)],
    );
    t.row_f(
        "remote memory read (GB/s)",
        &[run(true, Level::Memory, 64 << 20, 1), run(false, Level::Memory, 64 << 20, 1)],
    );
    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
