//! Ablation: the stale in-memory-directory broadcast penalty (Table V
//! mechanism), isolating the directory cache's contribution.
//!
//! Compares cross-node vs in-home sharing with the HitME cache enabled
//! and disabled. The result confirms the paper's §VI-C deduction: with the
//! AllocateShared policy active, cross-node sharing flips the in-memory
//! directory to `snoop-all`, so every post-eviction memory access pays a
//! broadcast; *without* the directory cache the in-memory state would have
//! been `shared` and memory could answer directly — "instead of shared
//! which would be used without the directory cache" (paper, §VI-C).

use hswx_engine::SimTime;
use hswx_haswell::microbench::{pointer_chase, Buffer};
use hswx_haswell::placement::{Level, Placement};
use hswx_haswell::report::Table;
use hswx_haswell::{CoherenceMode, System, SystemConfig};
use hswx_mem::NodeId;

fn run(hitme: bool, cross_node: bool) -> (f64, u64) {
    let mut cfg = SystemConfig::e5_2680_v3(CoherenceMode::ClusterOnDie);
    cfg.hitme_enabled = hitme;
    let mut sys = System::new(cfg);
    let home = NodeId(1);
    let buf = Buffer::on_node(&sys, home, 32 << 20, 0);
    let a = sys.topo.cores_of_node(home)[0];
    let b = if cross_node {
        sys.topo.cores_of_node(NodeId(0))[0]
    } else {
        sys.topo.cores_of_node(home)[1]
    };
    let t = Placement::shared(&mut sys, &[a, b], &buf.lines, Level::Memory, SimTime::ZERO);
    sys.reset_stats();
    let measurer = sys.topo.cores_of_node(NodeId(0))[0];
    let m = pointer_chase(&mut sys, measurer, &buf.lines, t, 5);
    (m.ns_per_access, sys.stats.dir_broadcasts)
}

fn main() {
    let mut t = Table::new(
        "ablate_directory",
        &["variant", "ns per load", "dir broadcasts"],
    );
    for (label, hitme, cross) in [
        ("shared in-home only, HitME on", true, false),
        ("shared cross-node,  HitME on", true, true),
        ("shared in-home only, HitME off", false, false),
        ("shared cross-node,  HitME off", false, true),
    ] {
        let (ns, bcasts) = run(hitme, cross);
        t.row(label, vec![format!("{ns:.1}"), format!("{bcasts}")]);
    }
    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
