//! Beyond-paper experiment: the three Haswell-EP die variants.
//!
//! The paper's §III-B describes three physical dies (8, 12, 18 cores) but
//! only measures the 12-core part. This binary runs the key local/remote
//! latency probes on all three, showing how the single-ring 8-core die
//! avoids queue-crossing penalties entirely and how the 18-core die's
//! longer rings stretch every on-chip distance.

use hswx_bench::scenarios::size_for_level;
use hswx_engine::SimTime;
use hswx_haswell::microbench::{pointer_chase, Buffer};
use hswx_haswell::placement::{Level, Placement};
use hswx_haswell::report::Table;
use hswx_haswell::{CoherenceMode, System, SystemConfig};
use hswx_mem::NodeId;

fn probe(cfg: SystemConfig, level: Level, remote: bool) -> f64 {
    let mut sys = System::new(cfg);
    let (home, placer, measurer) = if remote {
        let home = NodeId(sys.topo.n_nodes() / 2); // first node of socket 1
        (home, sys.topo.cores_of_node(home)[0], sys.topo.cores_of_node(NodeId(0))[0])
    } else {
        let c = sys.topo.cores_of_node(NodeId(0))[0];
        (NodeId(0), c, c)
    };
    let buf = Buffer::on_node(&sys, home, size_for_level(level), 0);
    let t = Placement::exclusive(&mut sys, placer, &buf.lines, level, SimTime::ZERO);
    pointer_chase(&mut sys, measurer, &buf.lines, t, 17).ns_per_access
}

fn main() {
    let mut t = Table::new(
        "skus",
        &["die / mode", "local L3", "local mem", "remote L3", "remote mem"],
    );
    for (label, cfg) in [
        ("8-core, source snoop", SystemConfig::e5_8core(CoherenceMode::SourceSnoop)),
        ("8-core, COD", SystemConfig::e5_8core(CoherenceMode::ClusterOnDie)),
        ("12-core, source snoop", SystemConfig::e5_2680_v3(CoherenceMode::SourceSnoop)),
        ("12-core, COD", SystemConfig::e5_2680_v3(CoherenceMode::ClusterOnDie)),
        ("18-core, source snoop", SystemConfig::e5_18core(CoherenceMode::SourceSnoop)),
        ("18-core, COD", SystemConfig::e5_18core(CoherenceMode::ClusterOnDie)),
    ] {
        t.row_f(
            label,
            &[
                probe(cfg.clone(), Level::L3, false),
                probe(cfg.clone(), Level::Memory, false),
                probe(cfg.clone(), Level::L3, true),
                probe(cfg, Level::Memory, true),
            ],
        );
    }
    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
