//! Regenerate paper Table VI: single-threaded read bandwidth (GB/s) for L3
//! and memory across the three coherence configurations (L3 rows use
//! exclusive-state data, as in the paper).

use hswx_bench::scenarios::BandwidthScenario;
use hswx_haswell::microbench::LoadWidth::Avx256;
use hswx_haswell::placement::{Level, PlacedState};
use hswx_haswell::report::Table;
use hswx_haswell::CoherenceMode::{self, ClusterOnDie, HomeSnoop, SourceSnoop};
use hswx_mem::{CoreId, NodeId};

fn cell(mode: CoherenceMode, level: Level, measurer: CoreId, home: u8, placer: CoreId) -> f64 {
    BandwidthScenario {
        mode,
        placers: vec![placer],
        state: PlacedState::Exclusive,
        level,
        home: NodeId(home),
        measurer,
        width: Avx256,
        size: None,
    }
    .run()
}

fn main() {
    let mut t = Table::new(
        "table6",
        &[
            "case",
            "default",
            "early-snoop-off",
            "cod node0",
            "cod n1 ring0 (c6)",
            "cod n1 ring1 (c8)",
        ],
    );
    let cod_cols = [CoreId(0), CoreId(6), CoreId(8)];

    let mut l3_local = vec![
        cell(SourceSnoop, Level::L3, CoreId(0), 0, CoreId(0)),
        cell(HomeSnoop, Level::L3, CoreId(0), 0, CoreId(0)),
    ];
    for &c in &cod_cols {
        let node = if c.0 < 6 { 0 } else { 1 };
        l3_local.push(cell(ClusterOnDie, Level::L3, c, node, c));
    }
    t.row_f("L3 local", &l3_local);

    let mut l3_r1 = vec![
        cell(SourceSnoop, Level::L3, CoreId(0), 1, CoreId(12)),
        cell(HomeSnoop, Level::L3, CoreId(0), 1, CoreId(12)),
    ];
    for &c in &cod_cols {
        l3_r1.push(cell(ClusterOnDie, Level::L3, c, 2, CoreId(12)));
    }
    t.row_f("L3 remote 1st node", &l3_r1);

    let mut m_local = vec![
        cell(SourceSnoop, Level::Memory, CoreId(0), 0, CoreId(0)),
        cell(HomeSnoop, Level::Memory, CoreId(0), 0, CoreId(0)),
    ];
    for &c in &cod_cols {
        let node = if c.0 < 6 { 0 } else { 1 };
        m_local.push(cell(ClusterOnDie, Level::Memory, c, node, c));
    }
    t.row_f("memory local", &m_local);

    let mut m_r1 = vec![
        cell(SourceSnoop, Level::Memory, CoreId(0), 1, CoreId(12)),
        cell(HomeSnoop, Level::Memory, CoreId(0), 1, CoreId(12)),
    ];
    for &c in &cod_cols {
        m_r1.push(cell(ClusterOnDie, Level::Memory, c, 2, CoreId(12)));
    }
    t.row_f("memory remote 1st node", &m_r1);

    let mut m_r2: Vec<String> = vec!["-".into(), "-".into()];
    for &c in &cod_cols {
        m_r2.push(format!("{:.1}", cell(ClusterOnDie, Level::Memory, c, 3, CoreId(18))));
    }
    t.row("memory remote 2nd node", m_r2);

    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
