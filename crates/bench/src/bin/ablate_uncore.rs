//! Ablation: uncore frequency scaling vs aggregate L3 bandwidth.
//!
//! The paper's §VII-B reports that 7-12-core L3 measurements "strongly
//! differ between measurements … up to 343 GB/s" and attributes the
//! unreproducible boosts to automatic uncore frequency scaling. Sweeping
//! the simulator's uncore clock reproduces the reported band: the typical
//! 278 GB/s at nominal clock rises into the paper's boost range at
//! +15…+25% uncore frequency.

use hswx_engine::SimTime;
use hswx_haswell::microbench::{stream_read_multi, Buffer, LoadWidth};
use hswx_haswell::placement::{Level, Placement};
use hswx_haswell::report::Table;
use hswx_haswell::{CoherenceMode, System, SystemConfig};
use hswx_mem::{CoreId, LineAddr, NodeId};

fn l3_aggregate(uncore: f64) -> f64 {
    let mut cfg = SystemConfig::e5_2680_v3(CoherenceMode::SourceSnoop);
    cfg.calib = cfg.calib.with_uncore_scale(uncore);
    let mut sys = System::new(cfg);
    let cores: Vec<CoreId> = (0..12).map(CoreId).collect();
    let bufs: Vec<Buffer> = cores
        .iter()
        .enumerate()
        .map(|(i, _)| Buffer::on_node(&sys, NodeId(0), 1 << 20, i as u64))
        .collect();
    let mut t = SimTime::ZERO;
    for (i, b) in bufs.iter().enumerate() {
        t = Placement::modified(&mut sys, cores[i], &b.lines, Level::L3, t);
    }
    let streams: Vec<(CoreId, &[LineAddr])> = cores
        .iter()
        .zip(&bufs)
        .map(|(&c, b)| (c, b.lines.as_slice()))
        .collect();
    stream_read_multi(&mut sys, &streams, LoadWidth::Avx256, t).gb_s
}

fn main() {
    let mut t = Table::new("ablate_uncore", &["uncore clock", "aggregate L3 read GB/s"]);
    for scale in [1.0f64, 1.05, 1.10, 1.15, 1.20, 1.25] {
        t.row(format!("{:.0}%", scale * 100.0), vec![format!("{:.0}", l3_aggregate(scale))]);
    }
    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
