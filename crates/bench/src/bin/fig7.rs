//! Regenerate paper Figure 7: COD-mode reads from node 0 to data shared by
//! two cores, with the forward copy (F) and home node (H) varied. Small
//! data sets are served from the home node's *memory* thanks to HitME
//! directory-cache hits (AllocateShared); as the footprint outgrows the
//! 14 KiB directory cache, an increasing share is forwarded by the remote
//! L3 after a snoop broadcast. The second block prints the fraction of
//! loads answered by DRAM — the analogue of the paper's
//! `MEM_LOAD_UOPS_L3_MISS_RETIRED:REMOTE_DRAM` diagnostic (footnote 6).

use hswx_bench::scenarios::{first_core_of, LatencyScenario};
use hswx_haswell::placement::{Level, PlacedState};
use hswx_haswell::report::{Figure, Series};
use hswx_haswell::CoherenceMode::ClusterOnDie;
use hswx_mem::NodeId;

fn main() {
    let sizes: Vec<u64> = [
        32, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 2560, 4096, 8192,
    ]
    .iter()
    .map(|k| k * 1024)
    .collect();

    let combos: [(u8, u8); 4] = [(1, 1), (1, 2), (2, 1), (2, 2)];
    let measurer = first_core_of(ClusterOnDie, 0);

    let mut fig = Figure::new("fig7", "ns per load");
    let mut dram = Figure::new("fig7_dram_fraction", "fraction of loads from DRAM");
    for (f, h) in combos {
        let mut lat = Series::new(format!("F:{f} H:{h}"));
        let mut frac = Series::new(format!("F:{f} H:{h}"));
        for &size in &sizes {
            let home_core = first_core_of(ClusterOnDie, h);
            let fwd_core = first_core_of(ClusterOnDie, f);
            let placers = if f == h {
                vec![home_core, hswx_bench::scenarios::nth_core_of(ClusterOnDie, h, 1)]
            } else {
                vec![home_core, fwd_core]
            };
            let (ns, mem_frac) = LatencyScenario {
                mode: ClusterOnDie,
                placers,
                state: PlacedState::Shared,
                level: Level::L3,
                home: NodeId(h),
                measurer,
                size: Some(size),
            }
            .run_detailed();
            lat.push(size as f64, ns);
            frac.push(size as f64, mem_frac);
        }
        fig.add(lat);
        dram.add(frac);
    }

    print!("{}", fig.to_text());
    print!("{}", dram.to_text());
    hswx_bench::save_csv(&fig, "results");
    hswx_bench::save_csv(&dram, "results");
}
