//! Regenerate paper Table II: the test-system configuration, cross-checked
//! against the simulator's actual configuration.

use hswx_haswell::report::Table;
use hswx_haswell::spec::table2_test_system;
use hswx_haswell::{CoherenceMode, SystemConfig};

fn main() {
    let spec = table2_test_system();
    let cfg = SystemConfig::e5_2680_v3(CoherenceMode::SourceSnoop);
    let mut t = Table::new("table2", &["property", "value", "simulator"]);
    t.row("processor", vec![spec.processor.into(), "modelled".into()]);
    t.row(
        "cores",
        vec![
            format!("{} x {}", spec.sockets, spec.cores_per_socket),
            format!("{}", cfg.n_cores()),
        ],
    );
    t.row(
        "core / AVX clock",
        vec![
            format!("{:.1} / {:.1} GHz", spec.core_ghz, spec.avx_ghz),
            format!("{:.1} / {:.1} GHz", cfg.calib.core_ghz, cfg.calib.avx_ghz),
        ],
    );
    t.row(
        "L1D / L2 per core",
        vec![
            format!("{} KiB / {} KiB", spec.l1d_kib, spec.l2_kib),
            format!("{} KiB / {} KiB", cfg.l1.size_bytes / 1024, cfg.l2.size_bytes / 1024),
        ],
    );
    t.row(
        "L3 per socket",
        vec![
            format!("{} MiB", spec.l3_mib),
            format!("{} MiB", cfg.l3_slice.size_bytes * 12 / (1 << 20)),
        ],
    );
    t.row(
        "memory",
        vec![
            format!("{}x DDR4-{} ({:.1} GB/s/socket)", spec.channels, spec.mem_mt_s, spec.mem_gb_s),
            format!("{}x {:.2} GB/s channels", spec.channels, cfg.dram.bus_gb_s),
        ],
    );
    t.row(
        "QPI",
        vec![
            format!("2 links @ {:.1} GT/s ({:.1} GB/s each/dir)", spec.qpi_gt_s, spec.qpi_gb_s),
            format!("{:.1} GB/s aggregated per direction", cfg.calib.qpi_gb_s),
        ],
    );
    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
