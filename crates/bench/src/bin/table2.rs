//! Regenerate paper Table II: the test-system configuration, cross-checked
//! against the simulator's actual configuration.
//!
//! The table itself is built by [`hswx_bench::jobs::table2`], shared with
//! the supervised `hswx campaign` runtime.

fn main() {
    let t = hswx_bench::jobs::table2();
    print!("{}", t.to_text());
    hswx_bench::save_csv(&t, "results");
}
