//! Cross-run regression diffing — the engine behind `hswx explain diff`.
//!
//! Takes two runs' exports (metrics-registry JSON, optionally telemetry
//! CSV) and localizes what changed to *named hardware components*: every
//! counter and telemetry channel is prefixed with the component that owns
//! it (`qpi.crc_replays`, `dram.busy_ps`, ...), so grouping by prefix and
//! ranking by relative delta turns "run B is slower" into "the QPI link
//! replayed 40× more flits".
//!
//! The ranking metric is the largest relative delta among a component's
//! counters, `|b - a| / max(1, a)` — a ratio, not an absolute, so a
//! component whose small counter exploded outranks a big counter that
//! wobbled. Ties break on absolute delta, then name, keeping the table
//! deterministic.

use hswx_engine::metrics::MetricsExport;
use std::collections::BTreeMap;

/// One counter (or telemetry channel) compared across the two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// Counter name (`qpi.crc_replays`).
    pub name: String,
    /// Value in run A.
    pub a: u64,
    /// Value in run B.
    pub b: u64,
    /// Relative change `|b - a| / max(1, a)`.
    pub rel: f64,
}

/// All of one component's deltas, scored for ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentDelta {
    /// Human-readable component name (`QPI link`).
    pub component: &'static str,
    /// Largest relative delta among the component's rows.
    pub score: f64,
    /// Per-counter rows, largest relative delta first.
    pub rows: Vec<DeltaRow>,
}

/// Map a counter/channel prefix to the hardware component that owns it.
/// Unknown prefixes land in "other" rather than being dropped: a diff
/// must never silently ignore a changed number.
pub fn component_of(counter: &str) -> &'static str {
    match counter.split('.').next().unwrap_or("") {
        "qpi" => "QPI link",
        "hitme" => "HitME directory cache",
        "directory" => "in-memory directory",
        "dram" => "DRAM",
        "snoop" => "snoop fabric",
        "recovery" => "fault recovery",
        "ring" => "ring interconnect",
        "cbo" => "CBo caching agent",
        "ha" => "home agent",
        "core" => "core buffers",
        "read" => "read path",
        "sys" => "walk engine",
        "cancel" => "cancellation",
        "job" => "job runtime",
        "shard" => "shard runtime",
        _ => "other",
    }
}

fn rel_delta(a: u64, b: u64) -> f64 {
    (b.abs_diff(a)) as f64 / (a.max(1)) as f64
}

/// Compare two sorted `(name, value)` sets (the union of names; a counter
/// absent from one run counts as 0 there) and return components ranked by
/// score, largest first. Unchanged rows are kept inside each component —
/// context matters when reading a diff — but all-zero components are
/// dropped.
pub fn rank_deltas(a: &[(String, u64)], b: &[(String, u64)]) -> Vec<ComponentDelta> {
    let mut union: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for (n, v) in a {
        union.entry(n).or_insert((0, 0)).0 = *v;
    }
    for (n, v) in b {
        union.entry(n).or_insert((0, 0)).1 = *v;
    }
    let mut by_component: BTreeMap<&'static str, Vec<DeltaRow>> = BTreeMap::new();
    for (name, (va, vb)) in union {
        by_component.entry(component_of(name)).or_default().push(DeltaRow {
            name: name.to_string(),
            a: va,
            b: vb,
            rel: rel_delta(va, vb),
        });
    }
    let mut out: Vec<ComponentDelta> = by_component
        .into_iter()
        .filter(|(_, rows)| rows.iter().any(|r| r.a != 0 || r.b != 0))
        .map(|(component, mut rows)| {
            rows.sort_by(|x, y| {
                y.rel
                    .total_cmp(&x.rel)
                    .then(y.b.abs_diff(y.a).cmp(&x.b.abs_diff(x.a)))
                    .then(x.name.cmp(&y.name))
            });
            let score = rows.first().map(|r| r.rel).unwrap_or(0.0);
            ComponentDelta { component, score, rows }
        })
        .collect();
    out.sort_by(|x, y| {
        y.score.total_cmp(&x.score).then(x.component.cmp(y.component))
    });
    out
}

/// Convenience: rank the counter deltas of two parsed metrics exports.
pub fn rank_metrics(a: &MetricsExport, b: &MetricsExport) -> Vec<ComponentDelta> {
    rank_deltas(&a.counters, &b.counters)
}

/// Render ranked deltas as a fixed-width terminal table. `label` names
/// the section (e.g. "protocol counters"); only rows that changed print,
/// but every changed component does — a regression diff with a silent cap
/// would hide exactly the long tail it exists to find.
pub fn render_table(label: &str, deltas: &[ComponentDelta]) -> String {
    let mut s = format!("{label} (ranked by largest relative change):\n");
    if deltas.iter().all(|d| d.score == 0.0) {
        s.push_str("  no differences\n");
        return s;
    }
    s.push_str(&format!(
        "  {:<24} {:<28} {:>14} {:>14} {:>9}\n",
        "component", "counter", "run A", "run B", "change"
    ));
    for d in deltas {
        if d.score == 0.0 {
            continue;
        }
        let mut first = true;
        for r in &d.rows {
            if r.a == r.b {
                continue;
            }
            let signed = if r.b >= r.a { r.rel } else { -r.rel };
            s.push_str(&format!(
                "  {:<24} {:<28} {:>14} {:>14} {:>+8.1}%\n",
                if first { d.component } else { "" },
                r.name,
                r.a,
                r.b,
                signed * 100.0,
            ));
            first = false;
        }
    }
    s
}

/// Parse a telemetry CSV (written by `TelemetrySampler::to_csv`) down to
/// per-channel totals, for diffing two runs' series against each other.
pub fn parse_telemetry_totals(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut lines = text.lines();
    let magic = lines.next().unwrap_or_default();
    if !magic.starts_with("# hswx-telemetry v1") {
        return Err(format!("not a telemetry CSV (header {magic:?})"));
    }
    let header = lines.next().ok_or("telemetry CSV has no column header")?;
    let mut cols = header.split(',');
    if cols.next() != Some("bucket_start_ps") {
        return Err(format!("unexpected telemetry CSV header: {header}"));
    }
    let channels: Vec<&str> = cols.collect();
    let mut totals = vec![0u64; channels.len()];
    for (lineno, row) in lines.enumerate() {
        let cells: Vec<&str> = row.split(',').collect();
        if cells.len() != channels.len() + 1 {
            return Err(format!("telemetry CSV row {} is ragged: {row}", lineno + 3));
        }
        for (i, cell) in cells[1..].iter().enumerate() {
            totals[i] += cell
                .parse::<u64>()
                .map_err(|_| format!("bad value {cell:?} in telemetry CSV row {}", lineno + 3))?;
        }
    }
    Ok(channels.into_iter().map(str::to_string).zip(totals).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Vec<(String, u64)> {
        vec![
            ("directory.reads".into(), 900),
            ("dram.reads".into(), 1000),
            ("hitme.hits".into(), 400),
            ("qpi.bytes".into(), 64_000),
            ("recovery.crc_retries".into(), 2),
            ("snoop.sent".into(), 500),
            ("sys.walks".into(), 10_000),
        ]
    }

    #[test]
    fn injected_qpi_retry_slowdown_ranks_qpi_first() {
        // Run B: the QPI link degraded — CRC retries exploded and replay
        // traffic inflated the byte count. Everything else wobbles a bit.
        let a = baseline();
        let mut b = baseline();
        for (n, v) in &mut b {
            match n.as_str() {
                "recovery.crc_retries" => *v = 160,
                "qpi.bytes" => *v = 96_000,
                "sys.walks" => *v = 10_050,
                "snoop.sent" => *v = 505,
                _ => {}
            }
        }
        let ranked = rank_deltas(&a, &b);
        assert_eq!(ranked[0].component, "fault recovery");
        assert_eq!(ranked[0].rows[0].name, "recovery.crc_retries");
        assert_eq!(ranked[1].component, "QPI link");
        // The two link-degradation components dominate everything else.
        assert!(ranked[1].score > ranked[2].score * 5.0, "{ranked:?}");
        let table = render_table("protocol counters", &ranked);
        assert!(table.contains("recovery.crc_retries"), "{table}");
        assert!(table.contains("QPI link"), "{table}");
        assert!(!table.contains("hitme.hits"), "unchanged row printed: {table}");
    }

    #[test]
    fn counters_absent_from_one_run_count_as_zero() {
        let a = vec![("qpi.bytes".to_string(), 100u64)];
        let b = vec![("dram.reads".to_string(), 50u64)];
        let ranked = rank_deltas(&a, &b);
        let qpi = ranked.iter().find(|d| d.component == "QPI link").unwrap();
        assert_eq!((qpi.rows[0].a, qpi.rows[0].b), (100, 0));
        let dram = ranked.iter().find(|d| d.component == "DRAM").unwrap();
        assert_eq!((dram.rows[0].a, dram.rows[0].b), (0, 50));
        // A counter appearing from zero is ranked by its absolute size
        // against the max(1, a) floor — huge, as it should be.
        assert!(dram.score >= 50.0);
    }

    #[test]
    fn identical_runs_render_as_no_differences() {
        let a = baseline();
        let ranked = rank_deltas(&a, &a);
        assert!(ranked.iter().all(|d| d.score == 0.0), "{ranked:?}");
        let table = render_table("protocol counters", &ranked);
        assert!(table.contains("no differences"), "{table}");
    }

    #[test]
    fn telemetry_csv_totals_parse_and_reject_garbage() {
        let csv = "# hswx-telemetry v1 bucket_ps=1000\n\
                   bucket_start_ps,qpi.bytes,ring.busy_ps\n\
                   0,64,500\n\
                   1000,128,250\n";
        let totals = parse_telemetry_totals(csv).unwrap();
        assert_eq!(
            totals,
            vec![("qpi.bytes".to_string(), 192), ("ring.busy_ps".to_string(), 750)]
        );
        assert!(parse_telemetry_totals("nope\n").is_err());
        assert!(parse_telemetry_totals(
            "# hswx-telemetry v1 bucket_ps=1\nbucket_start_ps,a\n0,1,2\n"
        )
        .is_err());
    }

    #[test]
    fn component_mapping_covers_every_live_prefix() {
        for (prefix, expect) in [
            ("qpi.bytes", "QPI link"),
            ("hitme.misses", "HitME directory cache"),
            ("directory.writes", "in-memory directory"),
            ("dram.busy_ps", "DRAM"),
            ("snoop.dir_broadcasts", "snoop fabric"),
            ("recovery.dir_rereads", "fault recovery"),
            ("ring.busy_ps", "ring interconnect"),
            ("cbo.tag_busy_ps", "CBo caching agent"),
            ("ha.tracker_wait_ps", "home agent"),
            ("core.wc_drain_ps", "core buffers"),
            ("sys.walks", "walk engine"),
            ("cancel.aborts", "cancellation"),
            ("job.wall_ms", "job runtime"),
            ("shard.msgs", "shard runtime"),
            ("mystery.thing", "other"),
        ] {
            assert_eq!(component_of(prefix), expect, "{prefix}");
        }
    }
}
