//! # hswx-bench — experiment harness
//!
//! Shared scenario code for the binaries that regenerate every table and
//! figure of the paper, plus the calibration anchor suite that checks the
//! simulator's emergent latencies/bandwidths against the paper's
//! measurements.

pub mod anchors;
pub mod parallel;
pub mod scenarios;

pub use anchors::{bandwidth_anchors, latency_anchors, Anchor};
pub use parallel::parallel_map;
