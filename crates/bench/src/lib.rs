//! # hswx-bench — experiment harness
//!
//! Shared scenario code for the binaries that regenerate every table and
//! figure of the paper, plus the calibration anchor suite that checks the
//! simulator's emergent latencies/bandwidths against the paper's
//! measurements.

pub mod anchors;
pub mod checkpoint;
pub mod diffcmp;
pub mod jobs;
pub mod parallel;
pub mod perf;
pub mod scenarios;
pub mod supervisor;

pub use anchors::{bandwidth_anchors, latency_anchors, Anchor};
pub use jobs::{JobCtx, JobOutput, JobSpec};
pub use parallel::parallel_map;
pub use supervisor::{select_jobs, CampaignSummary, Supervisor, SupervisorConfig};

use hswx_haswell::report::{Figure, Table};
use std::io;
use std::path::Path;

/// A result artifact that can persist itself as `<dir>/<id>.csv`.
pub trait CsvArtifact {
    /// File stem under the output directory.
    fn id(&self) -> &str;
    /// Write the CSV.
    fn write(&self, dir: &Path) -> io::Result<()>;
}

impl CsvArtifact for Figure {
    fn id(&self) -> &str {
        &self.id
    }
    fn write(&self, dir: &Path) -> io::Result<()> {
        self.write_csv(dir)
    }
}

impl CsvArtifact for Table {
    fn id(&self) -> &str {
        &self.id
    }
    fn write(&self, dir: &Path) -> io::Result<()> {
        self.write_csv(dir)
    }
}

/// Save a figure/table CSV under `dir`, exiting with a diagnostic instead
/// of panicking when the filesystem refuses (read-only checkout, missing
/// permissions, full disk). Used by every `src/bin` regenerator so a
/// failed write names the path and the I/O cause rather than unwinding.
pub fn save_csv(artifact: &impl CsvArtifact, dir: &str) {
    let dir = Path::new(dir);
    if let Err(e) = artifact.write(dir) {
        eprintln!(
            "error: cannot write {}: {e}",
            dir.join(format!("{}.csv", artifact.id())).display()
        );
        std::process::exit(1);
    }
}
