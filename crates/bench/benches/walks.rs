//! Criterion view of the `perfbench` walk kernels.
//!
//! Same kernels `hswx perfbench` measures for `BENCH_perf.json`, exposed
//! through the criterion harness for interactive ns/iter comparisons
//! while optimising (`cargo bench --bench walks`). The tracked regression
//! gate lives in the CLI (`hswx perfbench --quick`), not here.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hswx_bench::perf;
use hswx_engine::SimTime;
use hswx_haswell::{Access, CoherenceMode, Issue, System, SystemConfig};
use hswx_mem::{CoreId, LineAddr};

fn perf_kernels(c: &mut Criterion) {
    // Each criterion iteration runs one kernel end to end — System
    // construction, warm-up, and a batch of simulated walks — so the
    // numbers are for *relative* comparison across changes; use
    // `hswx perfbench` for per-walk throughput.
    const BATCH: u64 = 1_000;
    c.bench_function("perf/l1_hit_walk_1k", |b| {
        b.iter(|| perf::run_kernel_for_bench("l1_hit_walk", BATCH))
    });
    c.bench_function("perf/l3_walk_1k", |b| {
        b.iter(|| perf::run_kernel_for_bench("l3_walk", BATCH))
    });
    c.bench_function("perf/mem_walk_1k", |b| {
        b.iter(|| perf::run_kernel_for_bench("mem_walk", BATCH))
    });
    c.bench_function("perf/placement_l3_1k", |b| {
        b.iter(|| perf::run_kernel_for_bench("placement_l3", BATCH))
    });
}

/// `run_batch` vs the sequential reference (`run_batch_seq`) on the same
/// memory-walk stream, at the batch sizes the batch engine is designed
/// around. Every access targets a fresh line, so each walk takes the
/// long path to DRAM — the workload the SoA staging + lookahead
/// prefetcher exist for. The ratio between the `run_batch_N` and `seq_N`
/// rows is the batch dividend at that size.
fn batch_vs_seq(c: &mut Criterion) {
    for &n in &[1usize, 16, 256, 4096] {
        for batched in [false, true] {
            let engine = if batched { "run_batch" } else { "seq" };
            let mut sys = System::new(SystemConfig::e5_2680_v3(CoherenceMode::SourceSnoop));
            let mut next_line = 0u64;
            let mut t = SimTime::ZERO;
            c.bench_function(&format!("batch/{engine}_{n}"), |b| {
                b.iter(|| {
                    let mut accs: Vec<Access> = (0..n as u64)
                        .map(|i| Access::read(CoreId(0), LineAddr(next_line + i)))
                        .collect();
                    accs[0].issue = Issue::At(t);
                    next_line += n as u64;
                    let out = if batched {
                        sys.run_batch(&accs)
                    } else {
                        sys.run_batch_seq(&accs)
                    };
                    t = out.done;
                    black_box(out.replies.len())
                })
            });
        }
    }
}

criterion_group! {
    name = walks;
    config = Criterion::default().sample_size(10);
    targets = perf_kernels, batch_vs_seq
}
criterion_main!(walks);
