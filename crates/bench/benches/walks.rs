//! Criterion view of the `perfbench` walk kernels.
//!
//! Same kernels `hswx perfbench` measures for `BENCH_perf.json`, exposed
//! through the criterion harness for interactive ns/iter comparisons
//! while optimising (`cargo bench --bench walks`). The tracked regression
//! gate lives in the CLI (`hswx perfbench --quick`), not here.

use criterion::{criterion_group, criterion_main, Criterion};
use hswx_bench::perf;

fn perf_kernels(c: &mut Criterion) {
    // Each criterion iteration runs one kernel end to end — System
    // construction, warm-up, and a batch of simulated walks — so the
    // numbers are for *relative* comparison across changes; use
    // `hswx perfbench` for per-walk throughput.
    const BATCH: u64 = 1_000;
    c.bench_function("perf/l1_hit_walk_1k", |b| {
        b.iter(|| perf::run_kernel_for_bench("l1_hit_walk", BATCH))
    });
    c.bench_function("perf/l3_walk_1k", |b| {
        b.iter(|| perf::run_kernel_for_bench("l3_walk", BATCH))
    });
    c.bench_function("perf/mem_walk_1k", |b| {
        b.iter(|| perf::run_kernel_for_bench("mem_walk", BATCH))
    });
    c.bench_function("perf/placement_l3_1k", |b| {
        b.iter(|| perf::run_kernel_for_bench("placement_l3", BATCH))
    });
}

criterion_group! {
    name = walks;
    config = Criterion::default().sample_size(10);
    targets = perf_kernels
}
criterion_main!(walks);
