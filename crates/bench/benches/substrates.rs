//! Criterion benches for the substrate crates: raw event-queue, cache
//! array, DRAM model, and single-access walk throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use hswx_engine::{EventQueue, SimTime};
use hswx_haswell::{CoherenceMode, System, SystemConfig};
use hswx_mem::{
    CacheGeometry, DdrTimings, DramChannel, LineAddr, SetAssocCache,
};

fn event_queue(c: &mut Criterion) {
    c.bench_function("engine/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime(i * 7919 % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        })
    });
}

fn cache_array(c: &mut Criterion) {
    c.bench_function("mem/l3_slice_insert_access_10k", |b| {
        b.iter(|| {
            let mut cache: SetAssocCache<u32> =
                SetAssocCache::new(CacheGeometry::l3_slice_haswell());
            for i in 0..10_000u64 {
                cache.insert(LineAddr(i * 17), i as u32);
                cache.access(LineAddr((i / 2) * 17));
            }
            cache.len()
        })
    });
}

fn dram_channel(c: &mut Criterion) {
    c.bench_function("mem/dram_channel_10k_accesses", |b| {
        b.iter(|| {
            let mut ch = DramChannel::new(DdrTimings::ddr4_2133());
            let mut last = SimTime::ZERO;
            for i in 0..10_000u64 {
                let (t, _) = ch.access(SimTime(i * 5_000), LineAddr(i * 3), i % 4 == 0);
                last = last.max(t);
            }
            last
        })
    });
}

fn access_walks(c: &mut Criterion) {
    c.bench_function("haswell/read_walk_l3_hit", |b| {
        let mut sys = System::new(SystemConfig::e5_2680_v3(CoherenceMode::SourceSnoop));
        let line = sys.topo.numa_base(hswx_mem::NodeId(0)).line();
        let mut t = sys.read(hswx_mem::CoreId(0), line, SimTime::ZERO).done;
        // Evict from private caches so every iteration hits the L3 path.
        b.iter(|| {
            sys.demote_to_l3(hswx_mem::CoreId(0), line, t);
            let out = sys.read(hswx_mem::CoreId(0), line, t);
            t = out.done;
            out.source
        })
    });
    c.bench_function("haswell/read_walk_cold_memory", |b| {
        let mut sys = System::new(SystemConfig::e5_2680_v3(CoherenceMode::ClusterOnDie));
        let base = sys.topo.numa_base(hswx_mem::NodeId(0)).line();
        let mut i = 0u64;
        let mut t = SimTime::ZERO;
        b.iter(|| {
            i += 1;
            let out = sys.read(hswx_mem::CoreId(0), LineAddr(base.0 + i), t);
            t = out.done;
            out.source
        })
    });
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets = event_queue, cache_array, dram_channel, access_walks
}
criterion_main!(substrates);
