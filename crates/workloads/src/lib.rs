//! # hswx-workloads — SPEC OMP2012 / SPEC MPI2007 application proxies
//!
//! The paper's §VIII runs SPEC OMP2012 (14 shared-memory applications) and
//! SPEC MPI2007 (13 message-passing applications) under the three coherence
//! configurations. We cannot run SPEC (proprietary sources, hours of
//! runtime), so each application is replaced by a **proxy**: a synthetic
//! thread-per-core workload parameterized by the memory-behaviour traits
//! that determine coherence-mode sensitivity —
//!
//! * working-set size and NUMA locality,
//! * the fraction of accesses to lines *shared across nodes* (the trait
//!   that exposes COD's broadcast worst cases, which the paper identifies
//!   as the cause of 362.fma3d's and 371.applu331's slowdowns),
//! * write intensity (RFO / migratory-line traffic),
//! * bandwidth-boundedness (streaming window) vs latency-boundedness, and
//! * compute intensity (ns of work per memory access).
//!
//! The proxies exercise the same simulator paths the real applications
//! would stress, so the *relative runtime* across protocol configurations —
//! Figure 10's content — is reproduced by mechanism rather than curve
//! fitting. `DESIGN.md` documents this substitution.

pub mod proxy;
pub mod suites;
pub mod trace;

pub use proxy::{run_proxy, AppProxy, Suite};
pub use suites::{mpi2007_proxies, omp2012_proxies};
pub use trace::{replay, ReplayResult, Trace, TraceOp, TraceRecord};
