//! Proxy definitions for the two SPEC suites the paper evaluates.
//!
//! Parameter choices follow each application's published characterization
//! (working-set and bandwidth studies of SPEC OMP2012/MPI2007) at the level
//! of *traits*: whether the code is bandwidth- or latency-bound, how much
//! cross-thread sharing its parallelization exhibits, and how NUMA-friendly
//! its data decomposition is. The two applications the paper singles out —
//! **362.fma3d** and **371.applu331** — carry the heavy cross-node sharing
//! that makes them ~5% faster under home snooping (better inter-socket
//! bandwidth) and up to 23% slower under COD (directory broadcast worst
//! cases); the rest are within a few percent in every mode.

use crate::proxy::{AppProxy, Suite};

fn omp(
    name: &'static str,
    working_set: u64,
    locality: f64,
    sharing: f64,
    write_frac: f64,
    window: u32,
    comp_ns: f64,
) -> AppProxy {
    AppProxy { name, suite: Suite::Omp2012, working_set, locality, sharing, write_frac, window, comp_ns }
}

fn mpi(
    name: &'static str,
    working_set: u64,
    window: u32,
    comp_ns: f64,
    write_frac: f64,
) -> AppProxy {
    AppProxy {
        name,
        suite: Suite::Mpi2007,
        working_set,
        locality: 0.995,
        sharing: 0.0,
        write_frac,
        window,
        comp_ns,
    }
}

const MIB: u64 = 1024 * 1024;

/// The 14 SPEC OMP2012 proxies.
pub fn omp2012_proxies() -> Vec<AppProxy> {
    vec![
        // compute-bound molecular dynamics: tiny working set
        omp("350.md", MIB / 2, 0.98, 0.005, 0.2, 2, 20.0),
        // bandwidth-bound CFD
        omp("351.bwaves", 16 * MIB, 0.96, 0.01, 0.3, 14, 0.6),
        // molecular modelling, moderate
        omp("352.nab", 4 * MIB, 0.97, 0.01, 0.25, 6, 5.0),
        // NAS BT solver, bandwidth leaning
        omp("357.bt331", 12 * MIB, 0.95, 0.02, 0.3, 12, 0.8),
        // sequence alignment, latency leaning
        omp("358.botsalgn", 2 * MIB, 0.97, 0.01, 0.15, 3, 9.0),
        // sparse LU, irregular
        omp("359.botsspar", 8 * MIB, 0.94, 0.02, 0.25, 5, 5.0),
        // lattice Boltzmann: strongly bandwidth-bound
        omp("360.ilbdc", 24 * MIB, 0.96, 0.01, 0.35, 16, 0.5),
        // crash simulation: heavy cross-thread boundary sharing (paper's
        // outlier #1)
        omp("362.fma3d", 8 * MIB, 0.90, 0.10, 0.35, 12, 0.8),
        // shallow water: streaming
        omp("363.swim", 24 * MIB, 0.96, 0.01, 0.35, 16, 0.5),
        // image processing: compute-bound
        omp("367.imagick", MIB, 0.98, 0.005, 0.2, 2, 18.0),
        // multigrid: bandwidth with some neighbour sharing
        omp("370.mgrid331", 16 * MIB, 0.95, 0.03, 0.3, 12, 0.8),
        // SSOR solver: cross-node sharing + latency sensitivity (paper's
        // outlier #2, +23% under COD)
        omp("371.applu331", 12 * MIB, 0.88, 0.13, 0.35, 10, 0.8),
        // Smith-Waterman: small, compute
        omp("372.smithwa", MIB, 0.98, 0.01, 0.2, 3, 12.0),
        // kd-tree search: pointer chasing, latency-bound, local
        omp("376.kdtree", 6 * MIB, 0.97, 0.01, 0.05, 2, 6.0),
    ]
}

/// The 13 SPEC MPI2007 proxies (ranks use local memory; communication is
/// modelled by the residual non-local fraction of `locality`).
pub fn mpi2007_proxies() -> Vec<AppProxy> {
    vec![
        mpi("104.milc", 12 * MIB, 12, 0.9, 0.3),
        mpi("107.leslie3d", 16 * MIB, 14, 0.7, 0.3),
        mpi("113.GemsFDTD", 20 * MIB, 14, 0.7, 0.3),
        mpi("115.fds4", 8 * MIB, 8, 1.5, 0.25),
        mpi("121.pop2", 10 * MIB, 10, 1.2, 0.3),
        mpi("122.tachyon", 2 * MIB, 3, 8.0, 0.1),
        mpi("126.lammps", 6 * MIB, 6, 2.0, 0.25),
        mpi("127.wrf2", 12 * MIB, 10, 1.0, 0.3),
        mpi("128.GAPgeofem", 14 * MIB, 12, 0.9, 0.3),
        mpi("129.tera_tf", 10 * MIB, 10, 1.0, 0.3),
        mpi("130.socorro", 8 * MIB, 8, 1.5, 0.25),
        mpi("132.zeusmp2", 16 * MIB, 12, 0.8, 0.3),
        mpi("137.lu", 12 * MIB, 8, 1.2, 0.3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(omp2012_proxies().len(), 14);
        assert_eq!(mpi2007_proxies().len(), 13);
    }

    #[test]
    fn outliers_have_heavy_sharing() {
        let omp = omp2012_proxies();
        let fma3d = omp.iter().find(|a| a.name == "362.fma3d").unwrap();
        let applu = omp.iter().find(|a| a.name == "371.applu331").unwrap();
        let max_other = omp
            .iter()
            .filter(|a| a.name != "362.fma3d" && a.name != "371.applu331")
            .map(|a| a.sharing)
            .fold(0.0, f64::max);
        assert!(fma3d.sharing > 2.0 * max_other);
        assert!(applu.sharing > 2.0 * max_other);
    }

    #[test]
    fn mpi_ranks_are_numa_local() {
        for app in mpi2007_proxies() {
            assert!(app.locality > 0.99, "{}", app.name);
            assert_eq!(app.sharing, 0.0, "{}", app.name);
        }
    }
}
