//! Application proxy model and runner.

use hswx_engine::{DetRng, SimDuration, SimTime, TimedPool};
use hswx_haswell::microbench::Buffer;
use hswx_haswell::placement::{Level, Placement};
use hswx_haswell::{CoherenceMode, System, SystemConfig};
use hswx_mem::{CoreId, LineAddr, NodeId};
use serde::{Deserialize, Serialize};

/// Which benchmark suite a proxy stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Suite {
    /// SPEC OMP2012: one shared address space, threads share data.
    Omp2012,
    /// SPEC MPI2007: per-rank address spaces, local memory dominates.
    Mpi2007,
}

/// Memory-behaviour description of one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppProxy {
    /// SPEC-style name ("362.fma3d", …).
    pub name: &'static str,
    /// Suite the application belongs to.
    pub suite: Suite,
    /// Per-thread working set, bytes.
    pub working_set: u64,
    /// Fraction of non-shared accesses that hit the thread's own NUMA
    /// node (MPI ranks ≈ 1.0; OMP threads lower).
    pub locality: f64,
    /// Fraction of accesses to lines shared across nodes.
    pub sharing: f64,
    /// Fraction of accesses that are stores.
    pub write_frac: f64,
    /// Streaming window (1 = fully dependent/latency-bound, up to 16 =
    /// fully pipelined/bandwidth-bound).
    pub window: u32,
    /// Compute time between memory operations, ns.
    pub comp_ns: f64,
}

struct ThreadState {
    core: CoreId,
    local: Buffer,
    /// Buffer of another thread (for the 1-locality remote fraction).
    remote: Buffer,
    issue_t: SimTime,
    window: TimedPool,
    remaining: usize,
    rng: DetRng,
    seq: usize,
    done: SimTime,
    /// The thread's next access, pre-drawn so the batch engine's staging
    /// layer can prefetch its simulator metadata while other threads
    /// dispatch. Drawing early is invisible: the RNG is per-thread, so
    /// the draw sequence each thread sees is unchanged.
    next: Option<(LineAddr, bool)>,
}

impl ThreadState {
    /// Draw the thread's next access class (advances `seq` and the RNG
    /// exactly like the old in-loop selection).
    fn draw_next(&mut self, app: &AppProxy, shared: &[LineAddr]) -> (LineAddr, bool) {
        self.seq += 1;
        let r = self.rng.unit();
        if r < app.sharing && !shared.is_empty() {
            let l = shared[self.rng.below(shared.len() as u64) as usize];
            (l, self.rng.chance(app.write_frac))
        } else if self.rng.chance(app.locality) {
            // Local streaming-ish access.
            let l = self.local.lines[self.seq % self.local.lines.len()];
            (l, self.rng.chance(app.write_frac))
        } else {
            let l = self.remote.lines[self.seq % self.remote.lines.len()];
            (l, false)
        }
    }
}

/// Run `app` under `mode` with `accesses` memory operations per thread;
/// returns the simulated wall time in nanoseconds.
///
/// Threads are pinned one per core (the paper pins via `KMP_AFFINITY` /
/// `-bind-to-core`). Shared data is pre-faulted so that cross-node shared
/// lines start in the Forward-in-another-node state that makes the COD
/// directory path visible, exactly like steady-state application sharing.
pub fn run_proxy(app: &AppProxy, mode: CoherenceMode, accesses: usize, seed: u64) -> f64 {
    let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
    let n = sys.topo.n_cores() as usize;
    let root = DetRng::new(seed);

    // Per-thread local buffers on the thread's own node.
    let cores: Vec<CoreId> = (0..n as u16).map(CoreId).collect();
    let locals: Vec<Buffer> = cores
        .iter()
        .map(|&c| {
            let node = sys.topo.node_of_core(c);
            Buffer::on_node(&sys, node, app.working_set.max(64 * 1024), c.0 as u64)
        })
        .collect();

    // Shared buffer: lines homed round-robin over all nodes, pre-shared so
    // every line has its Forward copy in a *different* node than home.
    let shared = build_shared_region(&mut sys, app);

    // Warm the local buffers fully so the measured phase runs at steady
    // state: small working sets execute out of the caches, large ones
    // stream from memory — like the real applications.
    let mut t0 = SimTime::ZERO;
    for (i, b) in locals.iter().enumerate() {
        t0 = Placement::modified(&mut sys, cores[i], &b.lines, Level::L3, t0);
    }

    let mut threads: Vec<ThreadState> = (0..n)
        .map(|i| ThreadState {
            core: cores[i],
            local: locals[i].clone(),
            remote: locals[(i + n / 2) % n].clone(),
            issue_t: t0,
            window: TimedPool::new(app.window.max(1) as usize),
            remaining: accesses,
            rng: root.fork(i as u64),
            seq: i * 17,
            done: t0,
            next: None,
        })
        .collect();
    // Pre-draw (and prefetch) every thread's first access: up to one
    // pending access per core is known at any moment, and staging them
    // ahead overlaps the host-memory stalls of consecutive dispatches.
    for th in threads.iter_mut() {
        if th.remaining > 0 {
            let (line, w) = th.draw_next(app, &shared);
            th.next = Some((line, w));
            sys.prefetch_access(th.core, line);
        }
    }

    // Interleave threads in global time order.
    loop {
        let mut best: Option<(usize, SimTime)> = None;
        for (i, th) in threads.iter().enumerate() {
            if th.remaining > 0 {
                match best {
                    Some((_, t)) if t <= th.issue_t => {}
                    _ => best = Some((i, th.issue_t)),
                }
            }
        }
        let Some((i, _)) = best else { break };
        let th = &mut threads[i];
        th.remaining -= 1;
        let (line, is_write) = th.next.take().expect("pre-drawn access");

        let slot = th.window.wait_for_slot(th.issue_t);
        let out = if is_write {
            sys.write(th.core, line, slot)
        } else {
            sys.read(th.core, line, slot)
        };
        th.window.occupy_until(out.done);
        th.issue_t = slot + SimDuration::from_ns(app.comp_ns.max(0.4));
        th.done = th.done.max(out.done);
        if th.remaining > 0 {
            let (l, w) = th.draw_next(app, &shared);
            th.next = Some((l, w));
            sys.prefetch_access(th.core, l);
        }
    }

    let end = threads.iter().map(|t| t.done).max().unwrap_or(t0);
    end.since(t0).as_ns()
}

/// Build and pre-share the cross-node shared region.
fn build_shared_region(sys: &mut System, app: &AppProxy) -> Vec<LineAddr> {
    if app.sharing <= 0.0 {
        return Vec::new();
    }
    let nodes: Vec<NodeId> = sys.topo.nodes().collect();
    let lines_per_node = 512u64;
    let mut all = Vec::new();
    let mut t = SimTime::ZERO;
    for (i, &home) in nodes.iter().enumerate() {
        let buf = Buffer::on_node(sys, home, lines_per_node * 64, 100);
        // Forward copy deliberately lands in a different node than home.
        let fwd_node = nodes[(i + 1) % nodes.len()];
        let home_core = sys.topo.cores_of_node(home)[0];
        let fwd_core = sys.topo.cores_of_node(fwd_node)[0];
        t = Placement::shared(sys, &[home_core, fwd_core], &buf.lines, Level::L3, t);
        all.extend(buf.lines);
    }
    all
}

/// Normalized runtimes of `app` across all three coherence modes
/// (source snoop = 1.0).
pub fn relative_runtimes(app: &AppProxy, accesses: usize, seed: u64) -> [f64; 3] {
    let src = run_proxy(app, CoherenceMode::SourceSnoop, accesses, seed);
    let hs = run_proxy(app, CoherenceMode::HomeSnoop, accesses, seed);
    let cod = run_proxy(app, CoherenceMode::ClusterOnDie, accesses, seed);
    [1.0, hs / src, cod / src]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::{mpi2007_proxies, omp2012_proxies};

    #[test]
    fn proxy_runs_and_is_deterministic() {
        let app = &omp2012_proxies()[0];
        let a = run_proxy(app, CoherenceMode::SourceSnoop, 200, 7);
        let b = run_proxy(app, CoherenceMode::SourceSnoop, 200, 7);
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn sharing_heavy_app_suffers_under_cod() {
        let fma3d = omp2012_proxies()
            .into_iter()
            .find(|a| a.name.contains("fma3d"))
            .unwrap();
        let [_, _, cod] = relative_runtimes(&fma3d, 1500, 11);
        assert!(cod > 1.02, "COD should slow the sharing-heavy proxy: {cod}");
    }

    #[test]
    fn local_mpi_app_modes_match_paper_directions() {
        let app = mpi2007_proxies()
            .into_iter()
            .find(|a| a.name.contains("milc") || a.suite == Suite::Mpi2007)
            .unwrap();
        let [_, hs, cod] = relative_runtimes(&app, 1500, 13);
        // Paper: "Disabling Early Snoop has a tendency to slightly decrease
        // the performance" of MPI codes.
        assert!(hs >= 0.99, "home snoop should not speed up local MPI: {hs}");
        assert!(hs < 1.15, "home snoop slowdown stays modest: {hs}");
        // Paper reports a slight COD *speedup*; the simulator lands in a
        // small slowdown instead because the asymmetric ring split hits the
        // node-1/3 ring-0 cores harder than real hardware (documented in
        // EXPERIMENTS.md). Either way the effect must stay small.
        assert!(cod < 1.15, "COD impact on local MPI stays small: {cod}");
    }
}
