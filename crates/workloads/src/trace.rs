//! Memory-trace record and replay.
//!
//! Lets downstream users drive the simulator with their *own* workloads:
//! capture a trace from an instrumented application (one record per memory
//! operation), then replay it against any coherence configuration to
//! predict how the machine's BIOS settings would affect it.
//!
//! The on-disk format is deliberately trivial — one whitespace-separated
//! record per line, `#` comments allowed:
//!
//! ```text
//! # core  op  addr(hex)      gap_ns
//! 0       R   0x1a2b3c40     1.2
//! 3       W   0x1a2b3c80     0.4
//! 12      N   0x7fff00c0     0.0
//! 1       F   0x1a2b3c40     2.0
//! ```
//!
//! `op` is `R`ead, `W`rite, `N`on-temporal store, or `F`lush; `gap_ns` is
//! the compute time between this operation's issue and the previous one
//! from the same core.

use hswx_engine::{FxHashMap, SimDuration, SimTime, TimedPool};
use hswx_haswell::{CoherenceMode, System, SystemConfig};
use hswx_mem::{Addr, CoreId};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::str::FromStr;

/// One memory operation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOp {
    /// Load.
    Read,
    /// Store (read-for-ownership semantics).
    Write,
    /// Non-temporal store (cache-bypassing).
    WriteNt,
    /// `clflush`.
    Flush,
}

impl TraceOp {
    fn code(self) -> char {
        match self {
            TraceOp::Read => 'R',
            TraceOp::Write => 'W',
            TraceOp::WriteNt => 'N',
            TraceOp::Flush => 'F',
        }
    }
}

/// One record of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Issuing core (global index).
    pub core: u16,
    /// Operation class.
    pub op: TraceOp,
    /// Byte address.
    pub addr: u64,
    /// Compute gap since the core's previous operation, ns.
    pub gap_ns: f64,
}

/// A replayable memory trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// The records, in global program order.
    pub records: Vec<TraceRecord>,
}

/// Error from parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append a record.
    pub fn push(&mut self, core: u16, op: TraceOp, addr: u64, gap_ns: f64) {
        self.records.push(TraceRecord { core, op, addr, gap_ns });
    }

    /// Serialize to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# core op addr gap_ns\n");
        for r in &self.records {
            let _ = writeln!(out, "{} {} {:#x} {}", r.core, r.op.code(), r.addr, r.gap_ns);
        }
        out
    }

    /// Parse the text format.
    pub fn parse(text: &str) -> Result<Self, TraceParseError> {
        let mut t = Trace::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |reason: &str| TraceParseError { line: i + 1, reason: reason.into() };
            let mut parts = line.split_whitespace();
            let core = parts
                .next()
                .and_then(|s| u16::from_str(s).ok())
                .ok_or_else(|| err("bad core id"))?;
            let op = match parts.next() {
                Some("R") | Some("r") => TraceOp::Read,
                Some("W") | Some("w") => TraceOp::Write,
                Some("N") | Some("n") => TraceOp::WriteNt,
                Some("F") | Some("f") => TraceOp::Flush,
                _ => return Err(err("bad op (expect R/W/N/F)")),
            };
            let addr_s = parts.next().ok_or_else(|| err("missing addr"))?;
            let addr = if let Some(hex) = addr_s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).map_err(|_| err("bad hex addr"))?
            } else {
                u64::from_str(addr_s).map_err(|_| err("bad addr"))?
            };
            let gap_ns = parts
                .next()
                .map(|s| f64::from_str(s).map_err(|_| err("bad gap")))
                .transpose()?
                .unwrap_or(0.0);
            if parts.next().is_some() {
                return Err(err("trailing fields"));
            }
            t.push(core, op, addr, gap_ns);
        }
        Ok(t)
    }
}

/// Result of replaying a trace.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Simulated wall time, ns.
    pub runtime_ns: f64,
    /// Operations executed.
    pub ops: usize,
    /// Mean memory latency observed per op class, ns.
    pub mean_latency_ns: FxHashMap<&'static str, f64>,
}

/// Replay `trace` on a fresh system in `mode` with `window` outstanding
/// operations per core (1 = strictly ordered per core).
pub fn replay(trace: &Trace, mode: CoherenceMode, window: u32) -> ReplayResult {
    let mut sys = System::new(SystemConfig::e5_2680_v3(mode));
    let n_cores = sys.topo.n_cores();
    let mut issue: FxHashMap<u16, SimTime> = FxHashMap::default();
    let mut windows: FxHashMap<u16, TimedPool> = FxHashMap::default();
    let mut done = SimTime::ZERO;
    let mut sums: FxHashMap<&'static str, (f64, u64)> = FxHashMap::default();

    for r in &trace.records {
        let core = CoreId(r.core % n_cores);
        let t_issue = *issue.entry(r.core).or_insert(SimTime::ZERO)
            + SimDuration::from_ns(r.gap_ns.max(0.0));
        let w = windows
            .entry(r.core)
            .or_insert_with(|| TimedPool::new(window.max(1) as usize));
        let slot = w.wait_for_slot(t_issue);
        let line = Addr(r.addr).line();
        let (t_done, class) = match r.op {
            TraceOp::Read => (sys.read(core, line, slot).done, "read"),
            TraceOp::Write => (sys.write(core, line, slot).done, "write"),
            TraceOp::WriteNt => (sys.write_nt(core, line, slot).done, "write_nt"),
            TraceOp::Flush => (sys.flush(core, line, slot), "flush"),
        };
        windows.get_mut(&r.core).expect("inserted").occupy_until(t_done);
        let e = sums.entry(class).or_insert((0.0, 0));
        e.0 += t_done.since(slot).as_ns();
        e.1 += 1;
        issue.insert(r.core, slot);
        done = done.max(t_done);
    }

    ReplayResult {
        runtime_ns: done.as_ns(),
        ops: trace.records.len(),
        mean_latency_ns: sums
            .into_iter()
            .map(|(k, (s, n))| (k, s / n.max(1) as f64))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let mut t = Trace::new();
        t.push(0, TraceOp::Read, 0x1000, 1.5);
        t.push(12, TraceOp::Write, 0x1040, 0.0);
        t.push(3, TraceOp::WriteNt, 0x2000, 2.0);
        t.push(1, TraceOp::Flush, 0x1000, 0.5);
        let parsed = Trace::parse(&t.to_text()).unwrap();
        assert_eq!(parsed.records, t.records);
    }

    #[test]
    fn parse_accepts_comments_and_decimal_addr() {
        let t = Trace::parse("# header\n\n0 R 4096 1.0\n1 w 0x40\n").unwrap();
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.records[0].addr, 4096);
        assert_eq!(t.records[1].op, TraceOp::Write);
        assert_eq!(t.records[1].gap_ns, 0.0);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let e = Trace::parse("0 R 0x40\nbogus line\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn replay_produces_time_and_latencies() {
        let mut t = Trace::new();
        // Core 0 writes a line; core 12 reads it (cross-socket transfer).
        t.push(0, TraceOp::Write, 0x40, 0.0);
        t.push(12, TraceOp::Read, 0x40, 5.0);
        let r = replay(&t, CoherenceMode::SourceSnoop, 1);
        assert_eq!(r.ops, 2);
        assert!(r.runtime_ns > 100.0, "{}", r.runtime_ns);
        assert!(r.mean_latency_ns["read"] > 50.0);
    }

    #[test]
    fn replay_is_mode_sensitive() {
        // A NUMA-local read-heavy trace: home snoop must be slower.
        let mut t = Trace::new();
        for i in 0..256u64 {
            t.push(0, TraceOp::Read, 0x100000 + i * 64 * 97, 0.0);
        }
        let src = replay(&t, CoherenceMode::SourceSnoop, 1).runtime_ns;
        let hs = replay(&t, CoherenceMode::HomeSnoop, 1).runtime_ns;
        assert!(hs > src, "home snoop local memory is slower: {src} vs {hs}");
    }
}
