#!/usr/bin/env python3
"""Validate an hswx trace-event JSON export against the checked-in schema.

Stdlib-only (CI runners have no `jsonschema` package): implements exactly
the JSON Schema subset the schema file uses — `type`, `enum`, `minimum`,
`required`, `properties`, and `items`. Exits nonzero with a path-qualified
message on the first violation.

Usage: validate_trace_schema.py SCHEMA.json TRACE.json
"""

import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def fail(path, msg):
    sys.exit(f"schema violation at {path or '$'}: {msg}")


def validate(value, schema, path=""):
    expected = schema.get("type")
    if expected is not None:
        py = TYPES[expected]
        # bool is a subclass of int in Python; keep integers strict.
        if isinstance(value, bool) and expected in ("integer", "number"):
            fail(path, f"expected {expected}, got boolean")
        if not isinstance(value, py):
            fail(path, f"expected {expected}, got {type(value).__name__}")
        if expected == "number" and isinstance(value, float) and value != value:
            fail(path, "NaN is not a valid number")
    if "enum" in schema and value not in schema["enum"]:
        fail(path, f"{value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            fail(path, f"{value} below minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                fail(path, f"missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]")


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    with open(sys.argv[1], encoding="utf-8") as f:
        schema = json.load(f)
    with open(sys.argv[2], encoding="utf-8") as f:
        trace = json.load(f)
    validate(trace, schema)
    events = trace.get("traceEvents", [])
    # Cross-event invariant the schema language can't express: every
    # `parent` reference must resolve to some event's id.
    ids = {e["args"]["id"] for e in events}
    flows = {}
    for i, e in enumerate(events):
        parent = e["args"].get("parent")
        if parent is not None and parent not in ids:
            fail(f"$.traceEvents[{i}].args.parent", f"dangling parent id {parent}")
        ph = e["ph"]
        where = f"$.traceEvents[{i}]"
        if ph == "X":
            if "dur" not in e:
                fail(where, "complete event without dur")
        else:  # flow endpoint: 's' or 'f' (schema already rejected the rest)
            if "id" not in e:
                fail(where, f"flow event {ph!r} without top-level id")
            if ph == "f" and e.get("bp") != "e":
                fail(where, "flow finish must bind to enclosing slice (bp: 'e')")
            s, f_ = flows.get(e["id"], (0, 0))
            flows[e["id"]] = (s + (ph == "s"), f_ + (ph == "f"))
    for fid, (s, f_) in flows.items():
        if s != f_:
            fail("$.traceEvents", f"flow id {fid} has {s} start(s) but {f_} finish(es)")
    print(f"{sys.argv[2]}: ok ({len(events)} events, {len(flows)} flows)")


if __name__ == "__main__":
    main()
