#!/usr/bin/env python3
"""Validate `hswx campaign --telemetry` export artifacts.

Stdlib-only (CI runners have no extra packages). Checks the two formats
the sampler emits:

* CSV (`*.csv`): magic comment `# hswx-telemetry v1 bucket_ps=N`, a
  header row starting with `bucket_start_ps`, every data row with the
  same column count, non-negative integer cells, and bucket starts that
  advance by exactly `bucket_ps` from zero (the sampler's determinism
  contract — see DESIGN.md).
* OpenMetrics (`*.om`): magic comment, `# TYPE`/`# HELP` metadata before
  first use of each metric family, sample lines shaped like
  `name{channel="..."} value [timestamp]`, and the mandatory trailing
  `# EOF`.

Exits nonzero with a line-qualified message on the first violation.

Usage: validate_telemetry.py FILE.csv [FILE.om ...]
"""

import re
import sys

MAGIC = re.compile(r"^# hswx-telemetry v(\d+)(?: bucket_ps=(\d+))?$")
SAMPLE = re.compile(
    r'^hswx_telemetry(?:_bucket_ps|\{channel="[^"{}]+"\})? \d+(?:\.\d+)?(?: \d+(?:\.\d+)?)?$'
)


def fail(path, line_no, msg):
    sys.exit(f"{path}:{line_no}: {msg}")


def check_csv(path, lines):
    m = MAGIC.match(lines[0]) if lines else None
    if not m or not m.group(2):
        fail(path, 1, "missing `# hswx-telemetry vN bucket_ps=N` magic")
    bucket_ps = int(m.group(2))
    if bucket_ps == 0:
        fail(path, 1, "bucket_ps must be positive")
    if len(lines) < 2 or not lines[1].startswith("bucket_start_ps"):
        fail(path, 2, "header row must start with `bucket_start_ps`")
    columns = len(lines[1].split(","))
    for row, line in enumerate(lines[2:]):
        line_no = row + 3
        cells = line.split(",")
        if len(cells) != columns:
            fail(path, line_no, f"expected {columns} columns, got {len(cells)}")
        for cell in cells:
            if not cell.isdigit():
                fail(path, line_no, f"non-integer cell {cell!r}")
        if int(cells[0]) != row * bucket_ps:
            fail(
                path,
                line_no,
                f"bucket_start_ps {cells[0]} != row*bucket_ps {row * bucket_ps}",
            )
    channels = columns - 1
    buckets = len(lines) - 2
    print(f"{path}: ok ({channels} channels, {buckets} buckets, {bucket_ps} ps/bucket)")


def check_openmetrics(path, lines):
    if not lines or not MAGIC.match(lines[0]):
        fail(path, 1, "missing `# hswx-telemetry vN` magic")
    if lines[-1] != "# EOF":
        fail(path, len(lines), "OpenMetrics text must end with `# EOF`")
    declared = set()
    samples = 0
    for i, line in enumerate(lines[1:-1]):
        line_no = i + 2
        typed = re.match(r"^# (TYPE|HELP) (\S+) ", line)
        if typed:
            declared.add(typed.group(2))
            continue
        if line.startswith("#"):
            fail(path, line_no, f"unexpected comment {line!r}")
        if not SAMPLE.match(line):
            fail(path, line_no, f"malformed sample line {line!r}")
        family = line.split("{", 1)[0].split(" ", 1)[0]
        if family not in declared:
            fail(path, line_no, f"sample for {family} before its # TYPE/# HELP")
        samples += 1
    print(f"{path}: ok ({samples} samples, {len(declared)} metric families)")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__.strip())
    for path in sys.argv[1:]:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        if path.endswith(".om"):
            check_openmetrics(path, lines)
        else:
            check_csv(path, lines)


if __name__ == "__main__":
    main()
