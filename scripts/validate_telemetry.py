#!/usr/bin/env python3
"""Validate hswx observability export artifacts.

Stdlib-only (CI runners have no extra packages). Checks the formats the
telemetry and heartbeat stacks emit:

* CSV (`*.csv`): magic comment `# hswx-telemetry v1 bucket_ps=N`, a
  header row starting with `bucket_start_ps`, every data row with the
  same column count, non-negative integer cells, and bucket starts that
  advance by exactly `bucket_ps` from zero (the sampler's determinism
  contract — see DESIGN.md).
* OpenMetrics (`*.om`): magic comment, `# TYPE`/`# HELP` metadata before
  first use of each metric family, sample lines shaped like
  `name{channel="..."} value [timestamp]`, and the mandatory trailing
  `# EOF`.
* Trace JSON (`*.json`): flow-event discipline of a shard flow trace —
  every `"ph": "s"`/`"f"` endpoint carries an integer `id`, every finish
  binds to its enclosing slice (`"bp": "e"`), shard-flow endpoints carry
  the `shard-flow` category, and starts pair 1:1 with finishes per flow
  id. (Full schema validation lives in validate_trace_schema.py; this is
  the telemetry-level sanity pass CI runs on exported artifacts.)
* Heartbeat (`*.txt`): `hswx-heartbeat v1` magic, `key=value` body
  lines, and well-formed repeatable `shard=` lane lines (integer lane id
  followed by integer-valued `restarts`/`stalls`/`queue_hwm`/`msgs`
  pairs; unknown keys are tolerated — readers skip them, that is the
  forward-compatibility contract).

Exits nonzero with a line-qualified message on the first violation.

Usage: validate_telemetry.py FILE.csv [FILE.om FILE.json heartbeat.txt ...]
"""

import json
import re
import sys

MAGIC = re.compile(r"^# hswx-telemetry v(\d+)(?: bucket_ps=(\d+))?$")
SAMPLE = re.compile(
    r'^hswx_telemetry(?:_bucket_ps|\{channel="[^"{}]+"\})? \d+(?:\.\d+)?(?: \d+(?:\.\d+)?)?$'
)


def fail(path, line_no, msg):
    sys.exit(f"{path}:{line_no}: {msg}")


def check_csv(path, lines):
    m = MAGIC.match(lines[0]) if lines else None
    if not m or not m.group(2):
        fail(path, 1, "missing `# hswx-telemetry vN bucket_ps=N` magic")
    bucket_ps = int(m.group(2))
    if bucket_ps == 0:
        fail(path, 1, "bucket_ps must be positive")
    if len(lines) < 2 or not lines[1].startswith("bucket_start_ps"):
        fail(path, 2, "header row must start with `bucket_start_ps`")
    columns = len(lines[1].split(","))
    for row, line in enumerate(lines[2:]):
        line_no = row + 3
        cells = line.split(",")
        if len(cells) != columns:
            fail(path, line_no, f"expected {columns} columns, got {len(cells)}")
        for cell in cells:
            if not cell.isdigit():
                fail(path, line_no, f"non-integer cell {cell!r}")
        if int(cells[0]) != row * bucket_ps:
            fail(
                path,
                line_no,
                f"bucket_start_ps {cells[0]} != row*bucket_ps {row * bucket_ps}",
            )
    channels = columns - 1
    buckets = len(lines) - 2
    print(f"{path}: ok ({channels} channels, {buckets} buckets, {bucket_ps} ps/bucket)")


def check_openmetrics(path, lines):
    if not lines or not MAGIC.match(lines[0]):
        fail(path, 1, "missing `# hswx-telemetry vN` magic")
    if lines[-1] != "# EOF":
        fail(path, len(lines), "OpenMetrics text must end with `# EOF`")
    declared = set()
    samples = 0
    for i, line in enumerate(lines[1:-1]):
        line_no = i + 2
        typed = re.match(r"^# (TYPE|HELP) (\S+) ", line)
        if typed:
            declared.add(typed.group(2))
            continue
        if line.startswith("#"):
            fail(path, line_no, f"unexpected comment {line!r}")
        if not SAMPLE.match(line):
            fail(path, line_no, f"malformed sample line {line!r}")
        family = line.split("{", 1)[0].split(" ", 1)[0]
        if family not in declared:
            fail(path, line_no, f"sample for {family} before its # TYPE/# HELP")
        samples += 1
    print(f"{path}: ok ({samples} samples, {len(declared)} metric families)")


def check_trace_flows(path, text):
    try:
        trace = json.loads(text)
    except ValueError as e:
        fail(path, 1, f"not valid JSON: {e}")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail(path, 1, "missing traceEvents array")
    flows = {}
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in ("s", "f"):
            continue
        where = f"traceEvents[{i}]"
        fid = e.get("id")
        if not isinstance(fid, int) or isinstance(fid, bool) or fid < 0:
            fail(path, 1, f"{where}: flow event {ph!r} without integer id")
        if e.get("cat") != "shard-flow":
            fail(path, 1, f"{where}: flow endpoint must carry cat 'shard-flow'")
        if ph == "f" and e.get("bp") != "e":
            fail(path, 1, f"{where}: flow finish must carry bp='e'")
        s, f_ = flows.get(fid, (0, 0))
        flows[fid] = (s + (ph == "s"), f_ + (ph == "f"))
    for fid, (s, f_) in sorted(flows.items()):
        if s != f_:
            fail(path, 1, f"flow id {fid} has {s} start(s) but {f_} finish(es)")
    print(f"{path}: ok ({len(events)} events, {len(flows)} flows paired)")


HEARTBEAT_MAGIC = "hswx-heartbeat v1"
LANE_KEYS = ("restarts", "stalls", "queue_hwm", "msgs")


def check_heartbeat(path, lines):
    if not lines or lines[0] != HEARTBEAT_MAGIC:
        fail(path, 1, f"missing `{HEARTBEAT_MAGIC}` magic")
    lanes = 0
    for i, line in enumerate(lines[1:]):
        line_no = i + 2
        if not line:
            continue
        if "=" not in line:
            fail(path, line_no, f"not a key=value line: {line!r}")
        key, value = line.split("=", 1)
        if key != "shard":
            continue
        # Repeatable lane line: `shard=ID k=v k=v ...`. The Rust reader
        # skips malformed lanes; CI treats them as hard errors so a
        # writer bug can't silently blank the dashboard panel.
        fields = value.split()
        if not fields or not fields[0].isdigit():
            fail(path, line_no, f"lane line without integer lane id: {line!r}")
        seen = {}
        for pair in fields[1:]:
            if "=" not in pair:
                fail(path, line_no, f"malformed lane pair {pair!r}")
            k, v = pair.split("=", 1)
            if k in LANE_KEYS and not v.isdigit():
                fail(path, line_no, f"lane key {k} has non-integer value {v!r}")
            seen[k] = v
            # Unknown keys fall through untouched: forward compatibility.
        missing = [k for k in LANE_KEYS if k not in seen]
        if missing:
            fail(path, line_no, f"lane line missing {missing}: {line!r}")
        lanes += 1
    print(f"{path}: ok (heartbeat, {lanes} shard lanes)")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__.strip())
    for path in sys.argv[1:]:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        lines = text.splitlines()
        if path.endswith(".om"):
            check_openmetrics(path, lines)
        elif path.endswith(".json"):
            check_trace_flows(path, text)
        elif path.endswith(".txt"):
            check_heartbeat(path, lines)
        else:
            check_csv(path, lines)


if __name__ == "__main__":
    main()
