#!/usr/bin/env python3
"""Validate an `hswx soak --report` JSON artifact against the checked-in
schema.

Stdlib-only (CI runners have no `jsonschema` package): implements exactly
the JSON Schema subset the schema file uses — `type`, `enum`, `minimum`,
`required`, `properties`, and `items`. Exits nonzero with a path-qualified
message on the first violation.

Usage: validate_soak_schema.py SCHEMA.json REPORT.json
"""

import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def fail(path, msg):
    sys.exit(f"schema violation at {path or '$'}: {msg}")


def validate(value, schema, path=""):
    expected = schema.get("type")
    if expected is not None:
        py = TYPES[expected]
        # bool is a subclass of int in Python; keep integers strict.
        if isinstance(value, bool) and expected in ("integer", "number"):
            fail(path, f"expected {expected}, got boolean")
        if not isinstance(value, py):
            fail(path, f"expected {expected}, got {type(value).__name__}")
        if expected == "number" and isinstance(value, float) and value != value:
            fail(path, "NaN is not a valid number")
    if "enum" in schema and value not in schema["enum"]:
        fail(path, f"{value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            fail(path, f"{value} below minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                fail(path, f"missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]")


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    with open(sys.argv[1], encoding="utf-8") as f:
        schema = json.load(f)
    with open(sys.argv[2], encoding="utf-8") as f:
        report = json.load(f)
    validate(report, schema)
    # Cross-field invariant the schema language can't express: `ok` must
    # agree with the failure lists — a green flag over red findings (or
    # vice versa) means the writer and the gate disagree.
    clean = not report["violations"] and not report["mismatches"]
    if report["ok"] != clean:
        fail(
            "$.ok",
            f"ok={report['ok']} but violations={len(report['violations'])}, "
            f"mismatches={len(report['mismatches'])}",
        )
    print(
        f"{sys.argv[2]}: ok ({report['rounds']} rounds, "
        f"{report['walks']} walks, ok={report['ok']})"
    )


if __name__ == "__main__":
    main()
